package buffer

import (
	"math/rand"
	"testing"

	"rlts/internal/geo"
)

// scrambledBuffer builds a buffer with a history-dependent heap layout:
// appends, value updates and interior drops in a seeded random order.
func scrambledBuffer(t *testing.T, seed int64, n int) *Buffer {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	b := New(n)
	for i := 0; i < n; i++ {
		b.Append(i, geo.Pt(r.Float64()*100, r.Float64()*100, float64(i)))
	}
	for e := b.head.next; e != nil && e.next != nil; e = e.next {
		b.SetValue(e, r.Float64()*10)
	}
	for i := 0; i < n/3; i++ {
		// Drop a random interior entry, then churn a value.
		e := b.head.next
		for j := r.Intn(b.size - 2); j > 0 && e.next.next != nil; j-- {
			e = e.next
		}
		b.Drop(e)
		if in := b.head.next; in != nil && in.next != nil {
			b.SetValue(in, r.Float64()*10)
		}
	}
	if err := b.checkInvariants(); err != nil {
		t.Fatalf("setup: %v", err)
	}
	return b
}

// TestExportRestoreRoundTrip: a restored buffer is layout-identical —
// same list order, same values, same heap slots — so KLowest and every
// subsequent mutation behave bit-identically.
func TestExportRestoreRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		b := scrambledBuffer(t, seed, 20)
		dump := b.Export()
		r, err := Restore(dump, 20)
		if err != nil {
			t.Fatalf("seed %d: restore: %v", seed, err)
		}
		if err := r.checkInvariants(); err != nil {
			t.Fatalf("seed %d: restored invariants: %v", seed, err)
		}
		if r.Size() != b.Size() || r.Droppable() != b.Droppable() {
			t.Fatalf("seed %d: size/droppable %d/%d, want %d/%d",
				seed, r.Size(), r.Droppable(), b.Size(), b.Droppable())
		}
		// Heap layout must match slot for slot, not just value order.
		for i := range b.heap {
			if b.heap[i].Index != r.heap[i].Index || b.heap[i].value != r.heap[i].value {
				t.Fatalf("seed %d: heap slot %d differs", seed, i)
			}
		}
		// KLowest sequences coincide for every k.
		for k := 1; k <= b.Droppable(); k++ {
			bk, rk := b.KLowest(k), r.KLowest(k)
			for i := range bk {
				if bk[i].Index != rk[i].Index {
					t.Fatalf("seed %d: KLowest(%d)[%d]: %d vs %d", seed, k, i, bk[i].Index, rk[i].Index)
				}
			}
		}
		// Subsequent mutations agree: drop the min on both, re-check.
		for b.Droppable() > 0 {
			bm, rm := b.Min(), r.Min()
			if bm.Index != rm.Index {
				t.Fatalf("seed %d: min diverged: %d vs %d", seed, bm.Index, rm.Index)
			}
			b.Drop(bm)
			r.Drop(rm)
		}
	}
}

func TestRestoreRejectsCorruptDumps(t *testing.T) {
	base := scrambledBuffer(t, 42, 12).Export()
	cases := []struct {
		name    string
		corrupt func(d []EntryState) []EntryState
	}{
		{"head in heap", func(d []EntryState) []EntryState {
			d[0].HeapPos = 0
			d[1].HeapPos = -1
			return d
		}},
		{"heap slot out of range", func(d []EntryState) []EntryState {
			for i := range d {
				if d[i].HeapPos >= 0 {
					d[i].HeapPos = 1 << 20
					break
				}
			}
			return d
		}},
		{"duplicate heap slot", func(d []EntryState) []EntryState {
			first := -1
			for i := range d {
				if d[i].HeapPos >= 0 {
					if first < 0 {
						first = d[i].HeapPos
					} else {
						d[i].HeapPos = first
						return d
					}
				}
			}
			t.Fatal("dump has < 2 heap entries")
			return d
		}},
		{"negative junk slot", func(d []EntryState) []EntryState {
			d[0].HeapPos = -7
			return d
		}},
		{"heap property violated", func(d []EntryState) []EntryState {
			for i := range d {
				if d[i].HeapPos == 0 {
					d[i].Value = 1e18 // root larger than any child
				}
			}
			return d
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dump := append([]EntryState(nil), base...)
			if _, err := Restore(c.corrupt(dump), 0); err == nil {
				t.Fatal("corrupt dump restored without error")
			}
		})
	}
}

func TestRestoreEmptyAndSingle(t *testing.T) {
	b, err := Restore(nil, 4)
	if err != nil || b.Size() != 0 {
		t.Fatalf("empty restore: %v size %d", err, b.Size())
	}
	b, err = Restore([]EntryState{{Index: 0, P: geo.Pt(1, 2, 3), HeapPos: -1}}, 4)
	if err != nil || b.Size() != 1 || b.Head() != b.Tail() {
		t.Fatalf("single restore: %v", err)
	}
}
