package eval

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/gen"
)

func quickCtx() *Context {
	return NewContext(QuickScale(), 1, nil)
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"quick", "default", "paper", ""} {
		if _, err := ScaleByName(name); err != nil {
			t.Errorf("ScaleByName(%q): %v", name, err)
		}
	}
	if _, err := ScaleByName("gigantic"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestContextCachesPoliciesAndData(t *testing.T) {
	c := quickCtx()
	opts := core.DefaultOptions(errm.SED, core.Online)
	p1, err := c.Policy(opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Policy(opts)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("policy not cached")
	}
	d1 := c.TrainData(gen.Geolife())
	d2 := c.TrainData(gen.Geolife())
	if &d1[0][0] != &d2[0][0] {
		t.Error("training data not cached")
	}
}

func TestRunSetComputesMeanError(t *testing.T) {
	c := quickCtx()
	data := c.EvalData(gen.Geolife(), 4, 100)
	algos := OnlineBaselines(errm.SED)
	res, err := RunSet(algos[0], data, 0.2, errm.SED)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanErr <= 0 {
		t.Errorf("mean error %v, want > 0", res.MeanErr)
	}
	if res.Points != 400 {
		t.Errorf("points %d, want 400", res.Points)
	}
	if res.PerPoint() <= 0 {
		t.Error("per-point time should be positive")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"A", "LongColumn"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	tb.Notes = append(tb.Notes, "a note")
	s := tb.String()
	for _, want := range []string{"demo", "LongColumn", "333", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 20 {
		t.Errorf("registry has %d experiments, want 20 (every table and figure, plus the extension experiments)", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil {
			t.Errorf("experiment %q has no runner", e.ID)
		}
	}
	if _, err := ExperimentByID("fig4"); err != nil {
		t.Error(err)
	}
	if _, err := ExperimentByID("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

// TestAllExperimentsRunAtQuickScale is the harness smoke test: every
// table/figure reproduction must complete and produce a non-empty table.
// Policies are shared through the context cache, so this stays fast.
func TestAllExperimentsRunAtQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are seconds-long; skipped in -short")
	}
	c := quickCtx()
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb, err := e.Run(c)
			if err != nil {
				t.Fatal(err)
			}
			if len(tb.Rows) == 0 {
				t.Error("empty table")
			}
			if tb.ID != e.ID {
				t.Errorf("table id %q, want %q", tb.ID, e.ID)
			}
			if !strings.Contains(tb.String(), tb.Title) {
				t.Error("rendering broken")
			}
		})
	}
}

func TestBellmanExperimentShape(t *testing.T) {
	// Bellman must never lose to RLTS+ (it is exact); verify from the
	// table numbers for SED.
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	c := quickCtx()
	tb, err := ExpBellman(c)
	if err != nil {
		t.Fatal(err)
	}
	var bellman, rlts float64
	for _, row := range tb.Rows {
		if row[0] != "SED" {
			continue
		}
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[2])
		}
		switch row[1] {
		case "Bellman":
			bellman = v
		case "RLTS+":
			rlts = v
		}
	}
	if bellman > rlts+1e-9 {
		t.Errorf("Bellman SED %v worse than RLTS+ %v — exact algorithm beaten", bellman, rlts)
	}
}

func TestTableCSVExport(t *testing.T) {
	tb := &Table{ID: "demo", Title: "t", Columns: []string{"A", "B"}}
	tb.AddRow("1", "x,y") // comma must be quoted
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "A,B") || !strings.Contains(got, `"x,y"`) {
		t.Errorf("CSV output wrong:\n%s", got)
	}
	dir := t.TempDir()
	path, err := tb.SaveCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "demo.csv" {
		t.Errorf("path = %s", path)
	}
	if _, err := os.Stat(path); err != nil {
		t.Error(err)
	}
}
