package eval

import (
	"fmt"
	"time"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/gen"
)

// Table2 reproduces Table II: the wall-clock cost of training RLTS and
// RLTS-Skip policies (online mode) and RLTS+ / RLTS-Skip+ policies (batch
// mode) under each error measurement.
func Table2(c *Context) (*Table, error) {
	tb := &Table{
		ID:      "table2",
		Title:   "Training time (Geolife substitute)",
		Columns: []string{"Algorithm", "Mode", "SED", "PED", "DAD", "SAD"},
	}
	type variantRow struct {
		name    string
		variant core.Variant
		j       int
		mode    string
	}
	rowsSpec := []variantRow{
		{"RLTS", core.Online, 0, "online"},
		{"RLTS+", core.Plus, 0, "batch"},
		{"RLTS-Skip", core.Online, 2, "online"},
		{"RLTS-Skip+", core.Plus, 2, "batch"},
	}
	ds := c.TrainData(gen.Geolife())
	for _, rs := range rowsSpec {
		row := []string{rs.name, rs.mode}
		for _, m := range errm.Measures {
			opts := core.Options{Measure: m, Variant: rs.variant, K: 3, J: rs.j}
			to := core.DefaultTrainOptions()
			to.RL.Episodes = c.Scale.Episodes
			to.RL.Epochs = c.Scale.Epochs
			to.RL.Seed = c.Seed
			to.RL.Workers = c.Workers
			start := time.Now()
			tr, _, err := core.Train(ds, opts, to)
			if err != nil {
				return nil, err
			}
			// Cache the freshly trained policy for later experiments.
			key := fmt.Sprintf("%s/%s/k%d/j%d", opts.Name(), opts.Measure, opts.K, opts.J)
			c.policies[key] = tr
			row = append(row, fmtDur(time.Since(start)))
		}
		tb.AddRow(row...)
	}
	tb.Notes = append(tb.Notes,
		"paper (full scale, GPU): several hours per policy; RLTS-Skip cheaper than RLTS because skipped points cost nothing",
		fmt.Sprintf("this run: %d trajectories x %d points x %d episodes x %d epochs",
			c.Scale.TrainTrajectories, c.Scale.TrainLen, c.Scale.Episodes, c.Scale.Epochs))
	return tb, nil
}

// Fig8 reproduces Figure 8: training cost and resulting effectiveness as
// the number of training trajectories grows.
func Fig8(c *Context) (*Table, error) {
	tb := &Table{
		ID:      "fig8",
		Title:   "Training cost vs number of training samples (online mode, SED)",
		Columns: []string{"Train trajectories", "Training time", "Mean SED error"},
	}
	m := errm.SED
	full := c.Scale.TrainTrajectories
	evalSet := c.EvalData(gen.Geolife(), c.Scale.EvalTrajectories, c.Scale.EvalLen)
	// The paper sweeps 500..2500 training trajectories; scale the sweep to
	// the configured repository size.
	fractions := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	g := gen.New(gen.Geolife(), c.Seed+5)
	pool := g.Dataset(full, c.Scale.TrainLen)
	for _, f := range fractions {
		n := int(f * float64(full))
		if n < 1 {
			n = 1
		}
		opts := core.DefaultOptions(m, core.Online)
		to := core.DefaultTrainOptions()
		to.RL.Episodes = c.Scale.Episodes
		to.RL.Epochs = c.Scale.Epochs
		to.RL.Seed = c.Seed
		to.RL.Workers = c.Workers
		start := time.Now()
		tr, _, err := core.Train(pool[:n], opts, to)
		if err != nil {
			return nil, err
		}
		cost := time.Since(start)
		res, err := c.runSetPolicy(tr, evalSet, 0.1, m)
		if err != nil {
			return nil, err
		}
		tb.AddRow(fmt.Sprintf("%d", n), fmtDur(cost), fmtErr(res.MeanErr))
	}
	tb.Notes = append(tb.Notes,
		"paper: training cost grows ~linearly with samples; effectiveness improves slightly — 1,000 samples is the chosen trade-off")
	return tb, nil
}
