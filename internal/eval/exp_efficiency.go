package eval

import (
	"fmt"
	"time"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/gen"
)

// Fig5 reproduces Figure 5: efficiency vs trajectory length |T| on the
// Truck substitute under SED, with W = 0.1|T|. Online algorithms report
// time per point; batch algorithms report total time.
func Fig5(c *Context) (*Table, error) {
	tb := &Table{
		ID:      "fig5",
		Title:   "Efficiency vs |T| (Truck substitute, SED, W = 0.1|T|)",
		Columns: []string{"Mode", "Algorithm", "Metric"},
	}
	for _, n := range c.Scale.EffLens {
		tb.Columns = append(tb.Columns, fmt.Sprintf("|T|=%d", n))
	}
	m := errm.SED

	onlineAlgos, batchAlgos, err := efficiencyAlgos(c, m)
	if err != nil {
		return nil, err
	}
	appendRows := func(mode string, algos []Algorithm, perPoint bool) error {
		for _, a := range algos {
			metric := "total"
			if perPoint {
				metric = "per point"
			}
			row := []string{mode, a.Name, metric}
			for _, n := range c.Scale.EffLens {
				data := c.EvalData(gen.Truck(), efficiencyCount(c), n)
				// Timing experiment: run serially so per-trajectory
				// wall-clock is not inflated by goroutine time-slicing.
				res, err := RunSet(a, data, c.Scale.EffFixedW, m)
				if err != nil {
					return err
				}
				if perPoint {
					row = append(row, fmtDurFine(res.PerPoint()))
				} else {
					row = append(row, fmtDur(res.Total))
				}
			}
			tb.AddRow(row...)
		}
		return nil
	}
	if err := appendRows("online", onlineAlgos, true); err != nil {
		return nil, err
	}
	if err := appendRows("batch", batchAlgos, false); err != nil {
		return nil, err
	}
	tb.Notes = append(tb.Notes,
		"paper: online — RLTS/RLTS-Skip slightly slower per point than STTrace/SQUISH/SQUISH-E (network inference vs a comparison), all far below the 3s sampling rate",
		"paper: batch — RLTS+ and RLTS-Skip+ faster than Bottom-Up; Top-Down slowest by orders of magnitude at large |T|")
	return tb, nil
}

// Fig6 reproduces Figure 6: efficiency vs the budget W at fixed |T| on the
// Truck substitute under SED.
func Fig6(c *Context) (*Table, error) {
	tb := &Table{
		ID:      "fig6",
		Title:   fmt.Sprintf("Efficiency vs W (Truck substitute, SED, |T|=%d)", c.Scale.EffLenForW),
		Columns: []string{"Mode", "Algorithm", "Metric", "W=0.1", "W=0.2", "W=0.3", "W=0.4", "W=0.5"},
	}
	m := errm.SED
	ratios := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	data := c.EvalData(gen.Truck(), efficiencyCount(c), c.Scale.EffLenForW)

	onlineAlgos, batchAlgos, err := efficiencyAlgos(c, m)
	if err != nil {
		return nil, err
	}
	appendRows := func(mode string, algos []Algorithm, perPoint bool) error {
		for _, a := range algos {
			metric := "total"
			if perPoint {
				metric = "per point"
			}
			row := []string{mode, a.Name, metric}
			for _, ratio := range ratios {
				// Timing experiment: serial for measurement fidelity.
				res, err := RunSet(a, data, ratio, m)
				if err != nil {
					return err
				}
				if perPoint {
					row = append(row, fmtDurFine(res.PerPoint()))
				} else {
					row = append(row, fmtDur(res.Total))
				}
			}
			tb.AddRow(row...)
		}
		return nil
	}
	if err := appendRows("online", onlineAlgos, true); err != nil {
		return nil, err
	}
	if err := appendRows("batch", batchAlgos, false); err != nil {
		return nil, err
	}
	tb.Notes = append(tb.Notes,
		"paper: batch — RLTS+ beats Top-Down by ~2 orders of magnitude and beats Bottom-Up with a gap that narrows as W grows")
	return tb, nil
}

// ExpScale reproduces §VI-B(8): wall-clock on the single longest
// trajectory (paper: ~383,000 points; scaled here) for the batch methods.
func ExpScale(c *Context) (*Table, error) {
	tb := &Table{
		ID:      "scale",
		Title:   fmt.Sprintf("Scalability on the longest trajectory (%d points, SED, W=0.1|T|)", c.Scale.LongestLen),
		Columns: []string{"Algorithm", "Time"},
	}
	m := errm.SED
	long := c.EvalData(gen.Truck(), 1, c.Scale.LongestLen)
	w := budget(c.Scale.LongestLen, 0.1)

	var algos []Algorithm
	for _, j := range []int{2, 0} { // paper order: RLTS-Skip+, RLTS+, Bottom-Up, Top-Down
		opts := core.Options{Measure: m, Variant: core.Plus, K: 3, J: j}
		tr, err := c.Policy(opts)
		if err != nil {
			return nil, err
		}
		algos = append(algos, c.rlts(tr))
	}
	algos = append(algos, BatchBaselines(m)...)
	for _, a := range algos {
		start := time.Now()
		if _, err := a.Run(long[0], w); err != nil {
			return nil, err
		}
		tb.AddRow(a.Name, fmtDur(time.Since(start)))
	}
	tb.Notes = append(tb.Notes, "paper (383k points): RLTS-Skip+ 2,843s < RLTS+ 3,412s < Bottom-Up 4,952s << Top-Down 98,427s")
	return tb, nil
}

// Fig7 reproduces Figure 7: the case study — one trajectory simplified by
// each online algorithm with its SED error. The SVG rendering of the
// polylines lives in examples/casestudy.
func Fig7(c *Context) (*Table, error) {
	tb := &Table{
		ID:      "fig7",
		Title:   "Case study (online mode, Geolife substitute, W = 0.1|T|)",
		Columns: []string{"Algorithm", "SED error", "Kept points"},
	}
	m := errm.SED
	tr := c.EvalData(gen.Geolife(), 1, c.Scale.EvalLen)[0]
	w := budget(len(tr), 0.1)

	var algos []Algorithm
	for _, j := range []int{0, 2} {
		opts := core.Options{Measure: m, Variant: core.Online, K: 3, J: j}
		p, err := c.Policy(opts)
		if err != nil {
			return nil, err
		}
		algos = append(algos, c.rlts(p))
	}
	algos = append(algos, OnlineBaselines(m)...)
	for _, a := range algos {
		kept, err := a.Run(tr, w)
		if err != nil {
			return nil, err
		}
		tb.AddRow(a.Name, fmtErr(errm.Error(m, tr, kept)), fmt.Sprintf("%d", len(kept)))
	}
	tb.Notes = append(tb.Notes, "paper: RLTS eps=2.851 vs SQUISH/SQUISH-E eps=5.987, STTrace eps=5.860 — roughly half")
	return tb, nil
}

// efficiencyAlgos assembles the standard online and batch line-ups used by
// the efficiency experiments.
func efficiencyAlgos(c *Context, m errm.Measure) (online, batch []Algorithm, err error) {
	for _, j := range []int{0, 2} {
		opts := core.Options{Measure: m, Variant: core.Online, K: 3, J: j}
		tr, err := c.Policy(opts)
		if err != nil {
			return nil, nil, err
		}
		online = append(online, c.rlts(tr))
	}
	online = append(online, OnlineBaselines(m)...)
	for _, j := range []int{0, 2} {
		opts := core.Options{Measure: m, Variant: core.Plus, K: 3, J: j}
		tr, err := c.Policy(opts)
		if err != nil {
			return nil, nil, err
		}
		batch = append(batch, c.rlts(tr))
	}
	batch = append(batch, BatchBaselines(m)...)
	return online, batch, nil
}

// efficiencyCount caps the dataset size of the timing experiments: the
// paper uses 100 trajectories per length setting.
func efficiencyCount(c *Context) int {
	n := c.Scale.EvalTrajectories / 4
	if n < 2 {
		n = 2
	}
	if n > 100 {
		n = 100
	}
	return n
}
