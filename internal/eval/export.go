package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"rlts/internal/storage"
)

// WriteCSV writes the table in machine-readable CSV form (header row from
// Columns, then Rows), so the figure series can be re-plotted externally.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the table to <dir>/<id>.csv and returns the path.
func (t *Table) SaveCSV(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, t.ID+".csv")
	err := storage.WriteAtomic(path, func(w io.Writer) error {
		return t.WriteCSV(w)
	})
	if err != nil {
		return "", fmt.Errorf("eval: write %s: %w", path, err)
	}
	return path, nil
}
