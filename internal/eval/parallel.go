package eval

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/traj"
)

// RunSetParallel is RunSet with the per-trajectory work spread over
// workers goroutines (0 = GOMAXPROCS). a.Run must be safe for concurrent
// use: the baseline algorithms are; for a trained policy use
// RLTSAlgorithmConcurrent rather than RLTSAlgorithm (whose sampling RNG is
// shared).
//
// The reported Total is the summed per-trajectory wall-clock (comparable
// with RunSet), not the elapsed time of the parallel run.
func RunSetParallel(a Algorithm, data []traj.Trajectory, wRatio float64, m errm.Measure, workers int) (MeasureResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(data) {
		workers = len(data)
	}
	if workers <= 1 {
		return RunSet(a, data, wRatio, m)
	}
	type cell struct {
		err      error
		measured float64
		dur      time.Duration
		points   int
	}
	cells := make([]cell, len(data))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t := data[i]
				budget := budget(len(t), wRatio)
				start := time.Now()
				kept, err := a.Run(t, budget)
				cells[i].dur = time.Since(start)
				cells[i].points = len(t)
				if err == nil {
					// A malformed index set would silently skew the mean
					// error (or panic inside errm.Error); surface it as a
					// typed per-trajectory failure instead.
					err = errm.CheckKept(t, kept)
				}
				if err != nil {
					cells[i].err = err
					continue
				}
				cells[i].measured = errm.Error(m, t, kept)
			}
		}()
	}
	for i := range data {
		next <- i
	}
	close(next)
	wg.Wait()

	res := MeasureResult{Algorithm: a.Name}
	for i, c := range cells {
		if c.err != nil {
			return res, fmt.Errorf("eval: %s: trajectory %d: %w", a.Name, i, c.err)
		}
		res.MeanErr += c.measured
		res.Total += c.dur
		res.Points += c.points
	}
	if len(data) > 0 {
		res.MeanErr /= float64(len(data))
	}
	return res, nil
}

// RLTSAlgorithmConcurrent wraps a trained policy as a concurrency-safe
// Algorithm: each Run call derives its own sampling RNG from the base
// seed and the trajectory's identity, so results are deterministic
// regardless of scheduling. The policy network itself is read-only at
// inference time except for layer scratch buffers, so each goroutine gets
// its own clone.
func RLTSAlgorithmConcurrent(tr *core.Trained, seed int64) Algorithm {
	pool := sync.Pool{New: func() interface{} {
		return &core.Trained{Opts: tr.Opts, Policy: tr.Policy.Clone()}
	}}
	return Algorithm{
		Name: tr.Opts.Name(),
		Run: func(t traj.Trajectory, w int) ([]int, error) {
			// Derive the sampling RNG from the trajectory identity so the
			// result does not depend on goroutine scheduling.
			r := rand.New(rand.NewSource(trajSeed(seed, t)))
			c := pool.Get().(*core.Trained)
			defer pool.Put(c)
			return c.Simplify(t, w, r)
		},
	}
}

// trajSeed derives a deterministic per-trajectory sampling seed from the
// base seed and the trajectory's identity (length plus first/last
// coordinates). The coordinates enter through math.Float64bits: a direct
// int64(x) conversion is implementation-defined once x leaves the int64
// range, and the adversarial ±6e307 coordinates the differential harness
// generates do exactly that — Float64bits is total, so the derived
// stream is the same on every platform and for every value. The batched
// eval runner shares this derivation, which is what makes its sampled
// results bit-identical to the per-trajectory path.
func trajSeed(seed int64, t traj.Trajectory) int64 {
	h := seed
	if len(t) > 0 {
		h = h*31 + int64(len(t))
		h = h*31 + int64(math.Float64bits(t[0].X))
		h = h*31 + int64(math.Float64bits(t[len(t)-1].Y))
	}
	return h
}
