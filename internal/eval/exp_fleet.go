package eval

import (
	"fmt"
	"math/rand"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/fleet"
	"rlts/internal/gen"
	"rlts/internal/geo"
	"rlts/internal/query"
	"rlts/internal/traj"
)

// ExpFleet evaluates the fleet subsystem's budget-allocation strategies
// (DESIGN.md §15) on the job they exist for: collective simplification.
// A heterogeneous collection — smooth long-haul Truck tracks, noisy
// short T-Drive taxi tracks, mixed Geolife tracks — shares one global
// storage budget. Each strategy splits that budget into per-trajectory
// W values, every trajectory is streamed through the online policy
// under its allocation, and the simplified collection is judged by the
// queries a trajectory database actually serves:
//
//   - range: answer-set recall and F1 of spatio-temporal range queries
//     against the answer computed on the raw collection;
//   - NN: fraction of probe points whose nearest trajectory matches;
//   - kNN: recall of the 5 nearest trajectories.
//
// Proportional splits by length alone, so the long-but-straight Truck
// tracks soak up budget that the wiggly taxi tracks need; error-greedy
// reallocates by the pilot pass's observed error and should win on
// query accuracy at equal total storage. The kept-point total is
// asserted against the global budget for every strategy.
func ExpFleet(c *Context) (*Table, error) {
	tb := &Table{
		ID:      "fleet",
		Title:   "Fleet allocation strategies: query accuracy at a shared storage budget (SED online policy)",
		Columns: []string{"Strategy", "Kept/Budget", "Range recall", "Range F1", "NN agree", "kNN recall"},
	}
	m := errm.SED
	tr, err := c.Policy(core.DefaultOptions(m, core.Online))
	if err != nil {
		return nil, err
	}

	// Heterogeneous collection. Truck trajectories are the longest but
	// smoothest (highway regime: HeadingSD 0.015), T-Drive the shortest
	// but noisiest (GPSNoise 8m, TurnProb 0.25): length is deliberately
	// anti-correlated with information content so the allocation
	// strategies can actually disagree.
	per := c.Scale.EvalTrajectories / 4
	if per < 2 {
		per = 2
	}
	var data []traj.Trajectory
	data = append(data, c.EvalData(gen.Geolife(), per, c.Scale.EvalLen)...)
	data = append(data, c.EvalData(gen.TDrive(), per, c.Scale.EvalLen/2)...)
	data = append(data, c.EvalData(gen.Truck(), per, c.Scale.EvalLen*2)...)

	total := 0
	for _, t := range data {
		total += len(t)
	}
	budget := total / 10
	if floor := fleet.MinPerMember * len(data); budget < floor {
		budget = floor
	}

	// Pilot pass: stream every trajectory under an equal share of the
	// budget and record the signals the allocator consumes — observed
	// error (ErrEst) and the policy's drop-pressure. Greedy inference
	// keeps the whole experiment deterministic.
	share := budget / len(data)
	if share < fleet.MinPerMember {
		share = fleet.MinPerMember
	}
	members := make([]fleet.Member, len(data))
	for i, t := range data {
		s, err := core.NewStreamer(tr.Policy, share, tr.Opts, false, nil)
		if err != nil {
			return nil, fmt.Errorf("eval: fleet pilot: %w", err)
		}
		for _, p := range t {
			s.Push(p)
		}
		members[i] = fleet.Member{
			ID:       fmt.Sprintf("t%03d", i),
			Len:      len(t),
			Err:      s.ErrEst(),
			Pressure: s.PolicyPressure(),
		}
	}

	// Query workload, shared across strategies: range rectangles centred
	// on the raw paths (so answer sets are non-trivial) plus NN / kNN
	// probe points near the collection's extent.
	r := rand.New(rand.NewSource(c.Seed + 41))
	minX, maxX := data[0][0].X, data[0][0].X
	minY, maxY := data[0][0].Y, data[0][0].Y
	tLo, tHi := data[0][0].T, data[0][0].T
	for _, t := range data {
		for _, p := range t {
			minX, maxX = min(minX, p.X), max(maxX, p.X)
			minY, maxY = min(minY, p.Y), max(maxY, p.Y)
			tLo, tHi = min(tLo, p.T), max(tHi, p.T)
		}
	}
	type rangeQ struct {
		rect   query.Rect
		t1, t2 float64
	}
	nQ := 8 * c.Scale.Repeats
	if nQ < 8 {
		nQ = 8
	}
	ranges := make([]rangeQ, nQ)
	for i := range ranges {
		t := data[r.Intn(len(data))]
		center := t[r.Intn(len(t))]
		half := 50 + r.Float64()*(maxX-minX)/8
		wt := (tHi - tLo) * (0.1 + r.Float64()*0.4)
		qs := tLo + r.Float64()*(tHi-tLo-wt)
		ranges[i] = rangeQ{
			rect: query.Rect{MinX: center.X - half, MinY: center.Y - half,
				MaxX: center.X + half, MaxY: center.Y + half},
			t1: qs, t2: qs + wt,
		}
	}
	probes := make([]geo.Point, nQ)
	for i := range probes {
		t := data[r.Intn(len(data))]
		p := t[r.Intn(len(t))]
		probes[i] = geo.Pt(p.X+r.NormFloat64()*100, p.Y+r.NormFloat64()*100, 0)
	}
	const kNN = 5

	for _, st := range fleet.Strategies() {
		alloc, err := fleet.Allocate(st, members, budget)
		if err != nil {
			return nil, fmt.Errorf("eval: fleet allocate %s: %w", st, err)
		}
		wOf := make(map[string]int, len(alloc))
		for _, a := range alloc {
			wOf[a.ID] = a.W
		}
		simp := make([]traj.Trajectory, len(data))
		kept := 0
		for i, t := range data {
			s, err := core.NewStreamer(tr.Policy, wOf[members[i].ID], tr.Opts, false, nil)
			if err != nil {
				return nil, fmt.Errorf("eval: fleet %s: %w", st, err)
			}
			for _, p := range t {
				s.Push(p)
			}
			kept += s.BufferSize()
			simp[i] = traj.Trajectory(s.Snapshot())
		}
		// The invariant the whole subsystem exists to uphold: stored
		// points never exceed the shared budget.
		if got := fleet.Total(alloc); got != budget {
			return nil, fmt.Errorf("eval: fleet %s allocated %d of budget %d", st, got, budget)
		}
		if kept > budget {
			return nil, fmt.Errorf("eval: fleet %s kept %d points, budget %d", st, kept, budget)
		}

		var recall, f1 float64
		for _, q := range ranges {
			want := query.RangeAnswerSet(data, q.rect, q.t1, q.t2)
			got := query.RangeAnswerSet(simp, q.rect, q.t1, q.t2)
			recall += query.SetRecall(want, got)
			f1 += query.SetF1(want, got)
		}
		recall /= float64(len(ranges))
		f1 /= float64(len(ranges))

		var nnAgree float64
		var knnRecall float64
		for _, p := range probes {
			iRaw, _ := query.NearestTrajectory(data, p)
			iSimp, _ := query.NearestTrajectory(simp, p)
			if iRaw == iSimp {
				nnAgree++
			}
			knnRecall += query.SetRecall(query.KNearest(data, p, kNN), query.KNearest(simp, p, kNN))
		}
		nnAgree /= float64(len(probes))
		knnRecall /= float64(len(probes))

		tb.AddRow(st.String(),
			fmt.Sprintf("%d/%d", kept, budget),
			fmt.Sprintf("%.3f", recall),
			fmt.Sprintf("%.3f", f1),
			fmt.Sprintf("%.1f%%", 100*nnAgree),
			fmt.Sprintf("%.3f", knnRecall))
	}
	tb.Notes = append(tb.Notes,
		fmt.Sprintf("%d trajectories (%d points) under one budget of %d points (~10x compression); %d range + %d point probes",
			len(data), total, budget, len(ranges), len(probes)),
		"proportional splits by length; error-greedy and rl-value redistribute via a pilot pass's ErrEst / policy pressure")
	return tb, nil
}
