package eval

import (
	"errors"
	"math"
	"testing"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/traj"
)

func TestRunSetParallelMatchesSerial(t *testing.T) {
	c := quickCtx()
	data := c.EvalData(gen.Truck(), 8, 150)
	a := BatchBaselines(errm.SED)[1] // Bottom-Up: deterministic
	serial, err := RunSet(a, data, 0.15, errm.SED)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSetParallel(a, data, 0.15, errm.SED, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(serial.MeanErr-parallel.MeanErr) > 1e-12 {
		t.Errorf("mean error differs: serial %v, parallel %v", serial.MeanErr, parallel.MeanErr)
	}
	if serial.Points != parallel.Points {
		t.Errorf("points differ: %d vs %d", serial.Points, parallel.Points)
	}
}

func TestRunSetParallelRLTSDeterministic(t *testing.T) {
	c := quickCtx()
	tr, err := c.Policy(core.DefaultOptions(errm.SED, core.Online))
	if err != nil {
		t.Fatal(err)
	}
	data := c.EvalData(gen.Geolife(), 8, 120)
	a := RLTSAlgorithmConcurrent(tr, 5)
	r1, err := RunSetParallel(a, data, 0.1, errm.SED, 4)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSetParallel(a, data, 0.1, errm.SED, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.MeanErr != r2.MeanErr {
		t.Errorf("parallel RLTS not deterministic: %v vs %v", r1.MeanErr, r2.MeanErr)
	}
}

func TestRunSetParallelPropagatesErrors(t *testing.T) {
	data := []traj.Trajectory{
		gen.New(gen.Geolife(), 1).Trajectory(50),
		gen.New(gen.Geolife(), 2).Trajectory(50),
	}
	bad := Algorithm{Name: "bad", Run: func(t traj.Trajectory, w int) ([]int, error) {
		return nil, errors.New("boom")
	}}
	if _, err := RunSetParallel(bad, data, 0.1, errm.SED, 4); err == nil {
		t.Error("error not propagated")
	}
}
