package eval

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/traj"
)

// RunSetBatched evaluates a trained policy over data through
// core.BatchEngine shards: trajectories are split into width-sized
// groups, each stepped in lockstep so one matrix forward drives the
// whole group, with up to workers groups simplifying concurrently (0 =
// GOMAXPROCS), each on its own policy clone.
//
// The per-trajectory results — and therefore MeanErr — are
// bit-identical to RunSet/RunSetParallel over RLTSAlgorithmConcurrent
// with the same seed, at any width and worker count: the engine output
// equals sequential Simplify exactly, and sampled (online-variant)
// items derive their RNG streams from the same trajSeed the
// per-trajectory wrapper uses. Only the timing differs in kind: Total
// is the summed per-shard wall-clock (the cost of running the shards
// back to back), not a summed per-trajectory figure, because lockstep
// trajectories do not have individual durations.
func RunSetBatched(tr *core.Trained, data []traj.Trajectory, wRatio float64, m errm.Measure, seed int64, width, workers int) (MeasureResult, error) {
	res := MeasureResult{Algorithm: tr.Opts.Name()}
	if len(data) == 0 {
		return res, nil
	}
	if width <= 0 || width > len(data) {
		width = len(data)
	}
	shards := (len(data) + width - 1) / width
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	sample := tr.Opts.Variant == core.Online

	items := make([]core.BatchItem, len(data))
	for i, t := range data {
		items[i] = core.BatchItem{T: t, W: budget(len(t), wRatio)}
		if sample {
			items[i].R = rand.New(rand.NewSource(trajSeed(seed, t)))
		}
	}
	results := make([]core.BatchResult, len(data))
	durs := make([]time.Duration, shards)
	var (
		wg   sync.WaitGroup
		next = make(chan int)
		errs = make([]error, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			eng, err := core.NewBatchEngine(tr.Policy.Clone(), tr.Opts, sample)
			if err != nil {
				errs[w] = err
				for range next {
					// Drain so the feeder never blocks.
				}
				return
			}
			for s := range next {
				lo := s * width
				hi := lo + width
				if hi > len(items) {
					hi = len(items)
				}
				start := time.Now()
				copy(results[lo:hi], eng.Run(items[lo:hi]))
				durs[s] = time.Since(start)
			}
		}(w)
	}
	for s := 0; s < shards; s++ {
		next <- s
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return res, fmt.Errorf("eval: %s: %w", tr.Opts.Name(), err)
		}
	}
	for _, d := range durs {
		res.Total += d
	}
	for i, r := range results {
		t := data[i]
		err := r.Err
		if err == nil {
			err = errm.CheckKept(t, r.Kept)
		}
		if err != nil {
			return res, fmt.Errorf("eval: %s: trajectory %d: %w", tr.Opts.Name(), i, err)
		}
		res.MeanErr += errm.Error(m, t, r.Kept)
		res.Points += len(t)
	}
	res.MeanErr /= float64(len(data))
	return res, nil
}

// runSetPolicy evaluates a trained policy honouring the context's batch
// and worker settings: the lockstep batched runner when BatchWidth is
// positive, the per-trajectory parallel path otherwise. Reported errors
// are identical either way (see RunSetBatched); the choice only moves
// where the inference cycles are spent.
func (c *Context) runSetPolicy(tr *core.Trained, data []traj.Trajectory, wRatio float64, m errm.Measure) (MeasureResult, error) {
	if c.FastKernel {
		// Engine/worker clones inherit the fast kernel from the clone's
		// policy, so the whole evaluation below runs the FastMath path.
		tr = tr.FastClone()
	}
	if c.BatchWidth > 0 {
		return RunSetBatched(tr, data, wRatio, m, c.Seed, c.BatchWidth, c.Workers)
	}
	return c.runSet(c.rlts(tr), data, wRatio, m)
}
