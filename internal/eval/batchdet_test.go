package eval

import (
	"math/rand"
	"strings"
	"testing"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/geo"
	"rlts/internal/rl"
	"rlts/internal/traj"
)

// extremeMag mirrors the differential harness's adversarial coordinate
// magnitude: far outside int64 range, so a naive float->int conversion
// in the seed hash is implementation-defined.
const extremeMag = 6e307

// extremeTraj builds a trajectory whose first and last points sit at
// huge signed coordinates — the inputs that made the old
// int64(t[0].X*1e3) seed derivation a hazard.
func extremeTraj(seed int64, n int, signX, signY float64) traj.Trajectory {
	r := rand.New(rand.NewSource(seed))
	t := make(traj.Trajectory, 0, n)
	tm := 0.0
	for i := 0; i < n; i++ {
		t = append(t, geo.Pt(r.NormFloat64()*100, r.NormFloat64()*100, tm))
		tm += 1 + r.Float64()
	}
	t[0].X = signX * extremeMag
	t[n-1].Y = signY * extremeMag
	return t
}

// onlineTrained wraps an untrained online-variant policy (sampled
// inference, so the derived RNG streams actually matter).
func onlineTrained(t *testing.T) *core.Trained {
	t.Helper()
	opts := core.DefaultOptions(errm.SED, core.Online)
	p, err := rl.NewPolicy(opts.StateSize(), opts.NumActions(), 20, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	return &core.Trained{Opts: opts, Policy: p}
}

// TestRLTSConcurrentExtremeCoordsDeterministic is the regression test
// for the seed-derivation fix: with ±6e307 coordinates, serial and
// parallel evaluation must agree exactly, and the per-trajectory seed
// must still distinguish trajectories that differ only in the sign of
// an extreme coordinate (the old conversion collapsed every
// out-of-range value onto one sentinel).
func TestRLTSConcurrentExtremeCoordsDeterministic(t *testing.T) {
	tr := onlineTrained(t)
	data := []traj.Trajectory{
		extremeTraj(1, 40, +1, +1),
		extremeTraj(2, 40, -1, +1),
		extremeTraj(3, 50, +1, -1),
		extremeTraj(4, 60, -1, -1),
	}
	a := RLTSAlgorithmConcurrent(tr, 7)
	serial, err := RunSet(a, data, 0.2, errm.SED)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSetParallel(a, data, 0.2, errm.SED, 4)
	if err != nil {
		t.Fatal(err)
	}
	if serial.MeanErr != parallel.MeanErr {
		t.Errorf("extreme-coordinate eval not scheduling-independent: serial %v, parallel %v",
			serial.MeanErr, parallel.MeanErr)
	}

	plus := extremeTraj(5, 40, +1, +1)
	minus := append(traj.Trajectory(nil), plus...)
	minus[0].X = -minus[0].X
	if trajSeed(7, plus) == trajSeed(7, minus) {
		t.Error("trajSeed collapses opposite extreme coordinates onto one stream")
	}
}

// TestRunSetRejectsMalformedKept is the regression test for the kept-
// index validation: an algorithm emitting a non-subsequence must yield
// a typed error from both the serial and parallel paths, not a panic or
// silently wrong statistics.
func TestRunSetRejectsMalformedKept(t *testing.T) {
	data := []traj.Trajectory{
		gen.New(gen.Geolife(), 1).Trajectory(50),
		gen.New(gen.Geolife(), 2).Trajectory(50),
	}
	malformed := []struct {
		name string
		kept func(n int) []int
	}{
		{"not increasing", func(n int) []int { return []int{0, 7, 3, n - 1} }},
		{"missing endpoint", func(n int) []int { return []int{0, n / 2} }},
		{"empty", func(n int) []int { return nil }},
	}
	for _, mc := range malformed {
		bad := Algorithm{Name: "bad-" + mc.name, Run: func(tr traj.Trajectory, w int) ([]int, error) {
			return mc.kept(len(tr)), nil
		}}
		if _, err := RunSet(bad, data, 0.1, errm.SED); err == nil || !strings.Contains(err.Error(), "errm:") {
			t.Errorf("RunSet %s: err = %v, want errm validation error", mc.name, err)
		}
		if _, err := RunSetParallel(bad, data, 0.1, errm.SED, 2); err == nil || !strings.Contains(err.Error(), "errm:") {
			t.Errorf("RunSetParallel %s: err = %v, want errm validation error", mc.name, err)
		}
	}
}

// TestRunSetBatchedMatchesParallel pins the batched eval runner to the
// per-trajectory path: identical MeanErr (bitwise) at every shard width
// and worker count, for both a sampled online policy and an argmax
// batch-variant policy.
func TestRunSetBatchedMatchesParallel(t *testing.T) {
	c := quickCtx()
	for _, variant := range []core.Variant{core.Online, core.Plus} {
		tr, err := c.Policy(core.DefaultOptions(errm.SED, variant))
		if err != nil {
			t.Fatal(err)
		}
		data := c.EvalData(gen.Geolife(), 9, 120)
		want, err := RunSet(RLTSAlgorithmConcurrent(tr, c.Seed), data, 0.1, errm.SED)
		if err != nil {
			t.Fatal(err)
		}
		for _, width := range []int{1, 3, 64} {
			for _, workers := range []int{1, 4} {
				got, err := RunSetBatched(tr, data, 0.1, errm.SED, c.Seed, width, workers)
				if err != nil {
					t.Fatal(err)
				}
				if got.MeanErr != want.MeanErr || got.Points != want.Points {
					t.Errorf("variant %v width %d workers %d: batched %v/%d != per-trajectory %v/%d",
						variant, width, workers, got.MeanErr, got.Points, want.MeanErr, want.Points)
				}
			}
		}
	}
}

// TestContextBatchWidthRouting checks the harness-level option: a
// context with BatchWidth set reports the same numbers as one without.
func TestContextBatchWidthRouting(t *testing.T) {
	c := quickCtx()
	tr, err := c.Policy(core.DefaultOptions(errm.SED, core.Online))
	if err != nil {
		t.Fatal(err)
	}
	data := c.EvalData(gen.Truck(), 6, 100)
	plain, err := c.runSetPolicy(tr, data, 0.1, errm.SED)
	if err != nil {
		t.Fatal(err)
	}
	c.BatchWidth = 4
	batched, err := c.runSetPolicy(tr, data, 0.1, errm.SED)
	if err != nil {
		t.Fatal(err)
	}
	if plain.MeanErr != batched.MeanErr {
		t.Errorf("BatchWidth routing changes results: %v vs %v", plain.MeanErr, batched.MeanErr)
	}
}
