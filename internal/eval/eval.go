// Package eval is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section (§VI) on the synthetic dataset
// substrate, at a configurable scale.
//
// Each experiment is a function from a Context (scale, seed, cached
// policies, log sink) to a Table that prints the same rows/series the
// paper reports. cmd/rlts-bench exposes them by experiment id and the
// root bench_test.go wires each into a testing.B benchmark.
package eval

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/traj"
)

// Scale sizes an experiment run. The paper's full scale (1,000 evaluation
// trajectories of 5,000 points, 1,000 training trajectories, 10M training
// transitions) takes hours; the default scale preserves every comparison's
// shape in seconds-to-minutes.
type Scale struct {
	Name string

	TrainTrajectories int // trajectories in the training repository
	TrainLen          int // points per training trajectory
	Episodes          int // episodes per trajectory per epoch
	Epochs            int // passes over the training repository

	EvalTrajectories int // trajectories per evaluation set
	EvalLen          int // points per evaluation trajectory

	// Efficiency experiments (Figs. 5, 6, scalability).
	EffLens    []int // |T| sweep for Fig. 5
	EffFixedW  float64
	EffLenForW int // |T| for Fig. 6
	LongestLen int // scalability trajectory length (paper: ~383,000)
	Repeats    int // timing repetitions
}

// QuickScale is sized for unit tests and benchmarks: everything in
// hundreds of points.
func QuickScale() Scale {
	return Scale{
		Name:              "quick",
		TrainTrajectories: 12,
		TrainLen:          100,
		Episodes:          8,
		Epochs:            2,
		EvalTrajectories:  8,
		EvalLen:           200,
		EffLens:           []int{400, 800, 1200},
		EffFixedW:         0.1,
		EffLenForW:        800,
		LongestLen:        3000,
		Repeats:           1,
	}
}

// DefaultScale is the container-friendly default of cmd/rlts-bench.
// Training trajectories match the evaluation length: the buffer dynamics
// the policy sees during training should match those at deployment, and
// at this miniature scale that alignment is what separates the learned
// policy from a random one.
func DefaultScale() Scale {
	return Scale{
		Name:              "default",
		TrainTrajectories: 60,
		TrainLen:          1000,
		Episodes:          10,
		Epochs:            5,
		EvalTrajectories:  40,
		EvalLen:           1000,
		EffLens:           []int{2000, 4000, 6000, 8000, 10000},
		EffFixedW:         0.1,
		EffLenForW:        8000,
		LongestLen:        40000,
		Repeats:           2,
	}
}

// PaperScale mirrors the paper's setup. Expect multi-hour runtimes.
func PaperScale() Scale {
	return Scale{
		Name:              "paper",
		TrainTrajectories: 1000,
		TrainLen:          1000,
		Episodes:          10,
		Epochs:            1,
		EvalTrajectories:  1000,
		EvalLen:           5000,
		EffLens:           []int{10000, 20000, 30000, 40000, 50000},
		EffFixedW:         0.1,
		EffLenForW:        40000,
		LongestLen:        383000,
		Repeats:           3,
	}
}

// ScaleByName resolves "quick", "default" or "paper".
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "quick":
		return QuickScale(), nil
	case "", "default":
		return DefaultScale(), nil
	case "paper":
		return PaperScale(), nil
	}
	return Scale{}, fmt.Errorf("eval: unknown scale %q (want quick, default or paper)", name)
}

// Context carries shared state across experiments: the scale, the RNG
// seed, a policy cache (training is the expensive part and most
// experiments reuse the same policies) and an optional log sink.
type Context struct {
	Scale Scale
	Seed  int64
	Log   io.Writer
	// Workers bounds the goroutines used for evaluation runs and policy
	// training (0 = GOMAXPROCS, 1 = fully serial). Results are
	// deterministic for any value.
	Workers int
	// BatchWidth, when positive, evaluates trained policies through the
	// lockstep core.BatchEngine runner with shards of this many
	// trajectories instead of one Simplify call per trajectory. Reported
	// errors are identical at every width (see RunSetBatched); timing
	// reflects the batched execution.
	BatchWidth int
	// FastKernel, when set, evaluates trained policies on their FastMath
	// clones (core.Trained.FastClone): fused approximate kernels with the
	// measured divergence bounds of DESIGN.md §13. Baselines are
	// unaffected. Reported errors may differ from exact evaluation within
	// those bounds (in practice they match: argmax decisions are stable
	// across the adversarial families).
	FastKernel bool

	policies map[string]*core.Trained
	datasets map[string][]traj.Trajectory
}

// NewContext creates an experiment context.
func NewContext(s Scale, seed int64, log io.Writer) *Context {
	return &Context{
		Scale:    s,
		Seed:     seed,
		Log:      log,
		policies: make(map[string]*core.Trained),
		datasets: make(map[string][]traj.Trajectory),
	}
}

func (c *Context) logf(format string, args ...interface{}) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format, args...)
	}
}

// TrainData returns (and caches) the training repository for a dataset
// profile.
func (c *Context) TrainData(profile gen.Config) []traj.Trajectory {
	key := "train/" + profile.Name
	if d, ok := c.datasets[key]; ok {
		return d
	}
	g := gen.New(profile, c.Seed)
	d := g.Dataset(c.Scale.TrainTrajectories, c.Scale.TrainLen)
	c.datasets[key] = d
	return d
}

// EvalData returns (and caches) an evaluation set for a dataset profile
// with the given trajectory length.
func (c *Context) EvalData(profile gen.Config, count, n int) []traj.Trajectory {
	key := fmt.Sprintf("eval/%s/o%g-%g/%d/%d", profile.Name, profile.OutlierProb, profile.OutlierScale, count, n)
	if d, ok := c.datasets[key]; ok {
		return d
	}
	g := gen.New(profile, c.Seed+1000)
	d := g.Dataset(count, n)
	c.datasets[key] = d
	return d
}

// Policy returns (and caches) a trained policy for the given options,
// trained on the Geolife profile as the paper does.
func (c *Context) Policy(opts core.Options) (*core.Trained, error) {
	key := fmt.Sprintf("%s/%s/k%d/j%d", opts.Name(), opts.Measure, opts.K, opts.J)
	if p, ok := c.policies[key]; ok {
		return p, nil
	}
	start := time.Now()
	to := core.DefaultTrainOptions()
	to.RL.Episodes = c.Scale.Episodes
	to.RL.Epochs = c.Scale.Epochs
	to.RL.Seed = c.Seed
	to.RL.Workers = c.Workers
	tr, _, err := core.Train(c.TrainData(gen.Geolife()), opts, to)
	if err != nil {
		return nil, fmt.Errorf("eval: training %s/%s: %w", opts.Name(), opts.Measure, err)
	}
	c.logf("eval: trained %s in %v\n", key, time.Since(start).Round(time.Millisecond))
	c.policies[key] = tr
	return tr, nil
}

// Algorithm is a named simplifier under evaluation.
type Algorithm struct {
	Name string
	Run  func(t traj.Trajectory, w int) ([]int, error)
}

// runSet evaluates an algorithm over a dataset honouring the context's
// worker budget; the experiments call this instead of RunSet directly so a
// single -workers flag steers the whole harness. a.Run must be safe for
// concurrent use when the budget exceeds one worker (see rlts).
func (c *Context) runSet(a Algorithm, data []traj.Trajectory, wRatio float64, m errm.Measure) (MeasureResult, error) {
	return RunSetParallel(a, data, wRatio, m, c.Workers)
}

// rlts wraps a trained policy as an Algorithm for the harness. It always
// uses the concurrency-safe wrapper — its sampling RNG derives from each
// trajectory's identity rather than a shared stream, so the reported
// errors are identical at every -workers setting, serial included.
func (c *Context) rlts(tr *core.Trained) Algorithm {
	return RLTSAlgorithmConcurrent(tr, c.Seed)
}

// RLTSAlgorithm wraps a trained policy as an Algorithm, using the paper's
// inference mode for its variant (sample online, argmax batch).
func RLTSAlgorithm(tr *core.Trained, seed int64) Algorithm {
	r := rand.New(rand.NewSource(seed))
	return Algorithm{
		Name: tr.Opts.Name(),
		Run: func(t traj.Trajectory, w int) ([]int, error) {
			return tr.Simplify(t, w, r)
		},
	}
}

// MeasureResult is one (algorithm, setting) cell: mean error and timing.
type MeasureResult struct {
	Algorithm string
	MeanErr   float64
	Total     time.Duration
	Points    int
}

// PerPoint returns the average processing time per input point.
func (r MeasureResult) PerPoint() time.Duration {
	if r.Points == 0 {
		return 0
	}
	return r.Total / time.Duration(r.Points)
}

// RunSet evaluates an algorithm over a dataset at budget ratio wRatio and
// returns the mean error under measure m plus total wall-clock time.
func RunSet(a Algorithm, data []traj.Trajectory, wRatio float64, m errm.Measure) (MeasureResult, error) {
	res := MeasureResult{Algorithm: a.Name}
	for _, t := range data {
		w := budget(len(t), wRatio)
		start := time.Now()
		kept, err := a.Run(t, w)
		res.Total += time.Since(start)
		if err == nil {
			// Same guard as RunSetParallel: refuse malformed index sets
			// before they skew the mean or panic inside errm.Error.
			err = errm.CheckKept(t, kept)
		}
		if err != nil {
			return res, fmt.Errorf("eval: %s: %w", a.Name, err)
		}
		res.MeanErr += errm.Error(m, t, kept)
		res.Points += len(t)
	}
	if len(data) > 0 {
		res.MeanErr /= float64(len(data))
	}
	return res, nil
}

func budget(n int, ratio float64) int {
	w := int(ratio * float64(n))
	if w < 2 {
		w = 2
	}
	return w
}

// Table is the printable result of an experiment.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// fmtErr formats an error value compactly.
func fmtErr(v float64) string { return fmt.Sprintf("%.4g", v) }

// fmtDur formats a duration compactly.
func fmtDur(d time.Duration) string { return d.Round(time.Microsecond).String() }

// fmtDurFine formats sub-microsecond durations (per-point costs) without
// losing resolution.
func fmtDurFine(d time.Duration) string { return d.String() }

// sortedKeys returns map keys in sorted order (for deterministic tables).
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
