package eval

import (
	"fmt"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/traj"
)

// ExpDirty is a robustness extension experiment for the dirty-ingest
// path: every hostile generator family is run through the repair stage
// (reorder window 16, 60 m/s speed gate — the serving defaults for a
// Geolife-like profile) and the surviving trajectory is simplified by a
// learned policy, two budget-bounded online heuristics and a batch
// baseline. The per-defect-class columns show which corruption, after
// repair, still costs simplification quality: a family whose column
// matches "clean" is fully absorbed by the repair stage; a gap is
// residual damage the simplifiers must carry.
func ExpDirty(c *Context) (*Table, error) {
	m := errm.SED
	cfg := traj.RepairConfig{Window: 16, MaxSpeed: 60}
	families := gen.DirtyFamilies()

	tb := &Table{
		ID:      "dirty",
		Title:   "Dirty-ingest robustness (repair window 16, gate 60 m/s; SED, W = 0.1|T|)",
		Columns: append([]string{"Algorithm", "clean"}, familyNames(families)...),
	}

	tr, err := c.Policy(core.DefaultOptions(m, core.Plus))
	if err != nil {
		return nil, err
	}
	algos := []Algorithm{c.rlts(tr)}
	for _, a := range OnlineBaselines(m) {
		if a.Name == "STTrace" || a.Name == "SQUISH-E" {
			algos = append(algos, a)
		}
	}
	for _, a := range BatchBaselines(m) {
		if a.Name == "Bottom-Up" {
			algos = append(algos, a)
		}
	}

	clean := c.EvalData(gen.Geolife(), c.Scale.EvalTrajectories/2+1, c.Scale.EvalLen)
	sets := make([][]traj.Trajectory, 0, len(families)+1)
	sets = append(sets, clean)
	for fi, fam := range families {
		var rep traj.RepairReport
		set := make([]traj.Trajectory, 0, len(clean))
		for ti, t := range clean {
			raw := gen.Raw(fam.Corrupt(t, c.Seed+int64(1000*fi+ti)))
			got, r, err := traj.Repair(raw, cfg)
			if err != nil {
				return nil, fmt.Errorf("eval: dirty/%s trajectory %d: %w", fam.Name, ti, err)
			}
			rep = rep.Add(r)
			set = append(set, got)
		}
		sets = append(sets, set)
		tb.Notes = append(tb.Notes, fmt.Sprintf(
			"%s: %d pushed, %d emitted (%d non-finite, %d late, %d reordered in window, %d duplicate, %d outlier)",
			fam.Name, rep.Pushed, rep.Emitted, rep.NonFinite, rep.Late, rep.Reordered, rep.Duplicates, rep.Outliers))
	}

	for _, a := range algos {
		row := []string{a.Name}
		for _, set := range sets {
			res, err := c.runSet(a, set, 0.1, m)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtErr(res.MeanErr))
		}
		tb.AddRow(row...)
	}
	tb.Notes = append(tb.Notes,
		"extension experiment: each column simplifies the repaired output of one corruption family",
		"errors are measured against the repaired trajectory — a column near 'clean' means the repair stage absorbed that defect class")
	return tb, nil
}

func familyNames(fams []gen.DirtyConfig) []string {
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.Name
	}
	return names
}
