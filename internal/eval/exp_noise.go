package eval

import (
	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/gen"
)

// ExpNoise is a robustness extension experiment: how do the online
// algorithms degrade as GPS outliers contaminate the stream? Outliers
// create points with huge apparent drop-cost; heuristics that carry
// errors forward (SQUISH/SQUISH-E) and the learned policy respond
// differently. The policy under test is trained on *clean* data, so this
// also probes distribution shift.
func ExpNoise(c *Context) (*Table, error) {
	tb := &Table{
		ID:      "noise",
		Title:   "Robustness to GPS outliers (online mode, SED, W = 0.1|T|)",
		Columns: []string{"Algorithm", "clean", "0.5% outliers", "2% outliers", "5% outliers"},
	}
	m := errm.SED
	rates := []float64{0, 0.005, 0.02, 0.05}
	const outlierScale = 80 // meters, a strong multipath spike

	tr, err := c.Policy(core.DefaultOptions(m, core.Online))
	if err != nil {
		return nil, err
	}
	algos := append([]Algorithm{c.rlts(tr)}, OnlineBaselines(m)...)
	for _, a := range algos {
		row := []string{a.Name}
		for _, rate := range rates {
			profile := gen.Geolife().WithOutliers(rate, outlierScale)
			data := c.EvalData(profile, c.Scale.EvalTrajectories/2+1, c.Scale.EvalLen)
			res, err := c.runSet(a, data, 0.1, m)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtErr(res.MeanErr))
		}
		tb.AddRow(row...)
	}
	tb.Notes = append(tb.Notes,
		"extension experiment: all methods degrade with contamination; the relative ordering under noise is the robustness signal",
		"the RLTS policy was trained on clean data (distribution shift is part of the test)")
	return tb, nil
}
