package eval

import (
	"fmt"
	"math/rand"
	"time"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/rl"
	"rlts/internal/traj"
)

// Table1 reproduces Table I: the summary statistics of the three dataset
// substitutes.
func Table1(c *Context) (*Table, error) {
	tb := &Table{
		ID:      "table1",
		Title:   "Dataset statistics (synthetic substitutes for Geolife / T-Drive / Truck)",
		Columns: []string{"Statistic", "Geolife", "T-Drive", "Truck"},
	}
	var rows [6][4]string
	rows[0][0] = "# of trajectories"
	rows[1][0] = "Total # of points"
	rows[2][0] = "Avg points/trajectory"
	rows[3][0] = "Sampling rate (avg, s)"
	rows[4][0] = "Average distance"
	rows[5][0] = "Paper's avg distance"
	paperDist := []string{"9.96m", "623m", "82.74m"}
	for pi, profile := range gen.Profiles() {
		d := c.EvalData(profile, c.Scale.EvalTrajectories, c.Scale.EvalLen)
		s := traj.Summarize(d)
		rows[0][pi+1] = fmt.Sprintf("%d", s.NumTrajectories)
		rows[1][pi+1] = fmt.Sprintf("%d", s.TotalPoints)
		rows[2][pi+1] = fmt.Sprintf("%.0f", s.AvgPoints)
		rows[3][pi+1] = fmt.Sprintf("%.1f", s.AvgSampleRate)
		rows[4][pi+1] = fmt.Sprintf("%.1fm", s.AvgDistance)
		rows[5][pi+1] = paperDist[pi]
	}
	for _, r := range rows {
		tb.AddRow(r[0], r[1], r[2], r[3])
	}
	tb.Notes = append(tb.Notes,
		"counts are scaled down from the paper (17,621 / 10,359 / 10,110 trajectories); sampling rate and distance character match Table I")
	return tb, nil
}

// ExpBellman reproduces §VI-B(1): RLTS+ and RLTS-Skip+ against the exact
// Bellman algorithm on short trajectories — errors should be close while
// the RL methods run orders of magnitude faster.
func ExpBellman(c *Context) (*Table, error) {
	tb := &Table{
		ID:      "bellman",
		Title:   "Comparison with the exact algorithm Bellman (batch mode, short trajectories)",
		Columns: []string{"Measure", "Algorithm", "Mean error", "Total time"},
	}
	// Short trajectories as in the paper (~300 points; scaled here).
	n := c.Scale.TrainLen
	if n > 300 {
		n = 300
	}
	count := c.Scale.EvalTrajectories
	if count > 100 {
		count = 100
	}
	data := c.EvalData(gen.Geolife(), count, n)
	const wRatio = 0.1
	for _, m := range errm.Measures {
		algos := []Algorithm{BellmanAlgorithm(m)}
		for _, j := range []int{0, 2} {
			opts := core.Options{Measure: m, Variant: core.Plus, K: 3, J: j}
			tr, err := c.Policy(opts)
			if err != nil {
				return nil, err
			}
			algos = append(algos, c.rlts(tr))
		}
		for _, a := range algos {
			res, err := c.runSet(a, data, wRatio, m)
			if err != nil {
				return nil, err
			}
			tb.AddRow(m.String(), a.Name, fmtErr(res.MeanErr), fmtDur(res.Total))
		}
	}
	tb.Notes = append(tb.Notes, "paper: RLTS+ error within a few percent of Bellman; ~3 orders of magnitude faster")
	return tb, nil
}

// Fig3 reproduces Figure 3: the RLTS variant family against Bottom-Up in
// the batch mode under SED — effectiveness rises and efficiency falls from
// RLTS to RLTS+ to RLTS++.
func Fig3(c *Context) (*Table, error) {
	tb := &Table{
		ID:      "fig3",
		Title:   "Variants of RLTS (batch mode, SED)",
		Columns: []string{"Algorithm", "Mean SED error", "Total time"},
	}
	data := c.EvalData(gen.Geolife(), c.Scale.EvalTrajectories, c.Scale.EvalLen)
	const wRatio = 0.1
	m := errm.SED
	var algos []Algorithm
	for _, j := range []int{0, 2} {
		for _, v := range []core.Variant{core.Online, core.Plus, core.PlusPlus} {
			opts := core.Options{Measure: m, Variant: v, K: 3, J: j}
			tr, err := c.Policy(opts)
			if err != nil {
				return nil, err
			}
			algos = append(algos, c.rlts(tr))
		}
	}
	algos = append(algos, BatchBaselines(m)...)
	for _, a := range algos {
		res, err := c.runSet(a, data, wRatio, m)
		if err != nil {
			return nil, err
		}
		tb.AddRow(a.Name, fmtErr(res.MeanErr), fmtDur(res.Total))
	}
	tb.Notes = append(tb.Notes, "paper: error improves and time grows from RLTS to RLTS+ to RLTS++; RLTS+ dominates Bottom-Up on both axes")
	return tb, nil
}

// Fig4 reproduces Figure 4: effectiveness vs the storage budget W
// (0.1..0.5 of |T|) under all four measures, online and batch.
func Fig4(c *Context) (*Table, error) {
	tb := &Table{
		ID:      "fig4",
		Title:   "Effectiveness vs W (Geolife substitute; mean error per trajectory)",
		Columns: []string{"Mode", "Measure", "Algorithm", "W=0.1", "W=0.2", "W=0.3", "W=0.4", "W=0.5"},
	}
	data := c.EvalData(gen.Geolife(), c.Scale.EvalTrajectories, c.Scale.EvalLen)
	ratios := []float64{0.1, 0.2, 0.3, 0.4, 0.5}

	type group struct {
		mode    string
		variant core.Variant
		base    func(errm.Measure) []Algorithm
	}
	groups := []group{
		{"online", core.Online, OnlineBaselines},
		{"batch", core.Plus, BatchBaselines},
	}
	for _, g := range groups {
		for _, m := range errm.Measures {
			var algos []Algorithm
			for _, j := range []int{0, 2} {
				opts := core.Options{Measure: m, Variant: g.variant, K: 3, J: j}
				tr, err := c.Policy(opts)
				if err != nil {
					return nil, err
				}
				algos = append(algos, c.rlts(tr))
			}
			algos = append(algos, g.base(m)...)
			for _, a := range algos {
				row := []string{g.mode, m.String(), a.Name}
				for _, ratio := range ratios {
					res, err := c.runSet(a, data, ratio, m)
					if err != nil {
						return nil, err
					}
					row = append(row, fmtErr(res.MeanErr))
				}
				tb.AddRow(row...)
			}
		}
	}
	tb.Notes = append(tb.Notes,
		"paper: RLTS (online) and RLTS+ (batch) beat every baseline at every W under every measure; errors shrink as W grows")
	return tb, nil
}

// ExpPolicy reproduces §VI-B(4): the contribution of the learned policy —
// the trained network against a uniformly random policy over the same
// action space, and against the always-drop-min heuristic.
func ExpPolicy(c *Context) (*Table, error) {
	tb := &Table{
		ID:      "policy",
		Title:   "Learned policy vs random policy (online mode, SED)",
		Columns: []string{"Policy", "Mean SED error"},
	}
	data := c.EvalData(gen.Geolife(), c.Scale.EvalTrajectories, c.Scale.EvalLen)
	m := errm.SED
	opts := core.DefaultOptions(m, core.Online)
	const wRatio = 0.1

	tr, err := c.Policy(opts)
	if err != nil {
		return nil, err
	}
	learned, err := c.runSetPolicy(tr, data, wRatio, m)
	if err != nil {
		return nil, err
	}
	tb.AddRow("learned (RLTS)", fmtErr(learned.MeanErr))

	// Uniform-random over the k candidate actions. Serial RunSet: the
	// algorithm shares one RNG across Run calls.
	r := rand.New(rand.NewSource(c.Seed + 7))
	randomRes, err := RunSet(randomPolicyAlgorithm(opts, r), data, wRatio, m)
	if err != nil {
		return nil, err
	}
	tb.AddRow("random", fmtErr(randomRes.MeanErr))

	// Untrained network (random weights, sampled).
	untrained, err := rl.NewPolicy(opts.StateSize(), opts.NumActions(), 20, rand.New(rand.NewSource(c.Seed+13)))
	if err != nil {
		return nil, err
	}
	ua := Algorithm{Name: "untrained-net", Run: func(t traj.Trajectory, w int) ([]int, error) {
		return core.Simplify(untrained, t, w, opts, true, r)
	}}
	// Serial RunSet: the closure shares one policy (whose network scratch is
	// not concurrency-safe) and one RNG across Run calls.
	ur, err := RunSet(ua, data, wRatio, m)
	if err != nil {
		return nil, err
	}
	tb.AddRow("untrained network", fmtErr(ur.MeanErr))

	// Deterministic drop-the-minimum (the hand-crafted rule the RL policy
	// replaces, i.e. action 0 always).
	dm := Algorithm{Name: "drop-min", Run: func(t traj.Trajectory, w int) ([]int, error) {
		return core.SimplifyFixedAction(t, w, opts, 0)
	}}
	dr, err := c.runSet(dm, data, wRatio, m)
	if err != nil {
		return nil, err
	}
	tb.AddRow("always drop min", fmtErr(dr.MeanErr))

	tb.Notes = append(tb.Notes, "paper: the learned policy contributes significantly, especially online")
	return tb, nil
}

// ExpK reproduces §VI-B(5): the effect of the state size k.
func ExpK(c *Context) (*Table, error) {
	tb := &Table{
		ID:      "k",
		Title:   "Effect of parameter k (online mode, SED)",
		Columns: []string{"k", "Mean SED error", "Total time"},
	}
	data := c.EvalData(gen.Geolife(), c.Scale.EvalTrajectories, c.Scale.EvalLen)
	m := errm.SED
	for _, k := range []int{1, 2, 3, 4, 5} {
		opts := core.Options{Measure: m, Variant: core.Online, K: k}
		tr, err := c.Policy(opts)
		if err != nil {
			return nil, err
		}
		res, err := c.runSetPolicy(tr, data, 0.1, m)
		if err != nil {
			return nil, err
		}
		tb.AddRow(fmt.Sprintf("%d", k), fmtErr(res.MeanErr), fmtDur(res.Total))
	}
	tb.Notes = append(tb.Notes, "paper: accuracy improves and time grows with k; k=3 is the default trade-off")
	return tb, nil
}

// ExpJ reproduces §VI-B(6): the effect of the skip horizon J.
func ExpJ(c *Context) (*Table, error) {
	tb := &Table{
		ID:      "j",
		Title:   "Effect of parameter J (online mode, SED; J=0 is plain RLTS)",
		Columns: []string{"J", "Mean SED error", "Total time"},
	}
	data := c.EvalData(gen.Geolife(), c.Scale.EvalTrajectories, c.Scale.EvalLen)
	m := errm.SED
	for _, j := range []int{0, 1, 2, 3, 4} {
		opts := core.Options{Measure: m, Variant: core.Online, K: 3, J: j}
		tr, err := c.Policy(opts)
		if err != nil {
			return nil, err
		}
		res, err := c.runSetPolicy(tr, data, 0.1, m)
		if err != nil {
			return nil, err
		}
		tb.AddRow(fmt.Sprintf("%d", j), fmtErr(res.MeanErr), fmtDur(res.Total))
	}
	tb.Notes = append(tb.Notes, "paper: as J grows, effectiveness degrades slightly and efficiency improves")
	return tb, nil
}

func randomPolicyAlgorithm(opts core.Options, r *rand.Rand) Algorithm {
	return Algorithm{
		Name: "random",
		Run: func(t traj.Trajectory, w int) ([]int, error) {
			return core.SimplifyRandom(t, w, opts, r)
		},
	}
}

// timing helper shared with the efficiency experiments.
func timeIt(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}
