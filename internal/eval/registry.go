package eval

import (
	"fmt"
	"sort"
)

// Experiment is a runnable reproduction of one paper table or figure.
type Experiment struct {
	ID    string
	Paper string // which table/figure of the paper it regenerates
	Run   func(*Context) (*Table, error)
}

// Experiments returns the full registry, ordered as in the paper's
// evaluation section.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table I (dataset statistics)", Table1},
		{"bellman", "§VI-B(1) (vs exact Bellman)", ExpBellman},
		{"fig3", "Figure 3 (RLTS variants)", Fig3},
		{"fig4", "Figure 4 (effectiveness vs W)", Fig4},
		{"policy", "§VI-B(4) (learned vs random policy)", ExpPolicy},
		{"k", "§VI-B(5) (effect of k)", ExpK},
		{"j", "§VI-B(6) (effect of J)", ExpJ},
		{"fig5", "Figure 5 (efficiency vs |T|)", Fig5},
		{"scale", "§VI-B(8) (scalability)", ExpScale},
		{"fig6", "Figure 6 (efficiency vs W)", Fig6},
		{"fig7", "Figure 7 (case study)", Fig7},
		{"table2", "Table II (training time)", Table2},
		{"fig8", "Figure 8 (training cost)", Fig8},
		{"infer", "§VI-A ablation (sampling vs greedy inference)", ExpInference},
		{"query", "§I motivation (query answering on simplified data)", ExpQuery},
		{"fleet", "collective extension (shared-budget allocation vs query accuracy)", ExpFleet},
		{"bounded", "error-bounded extension (CISED/OPERB vs Min-Size search)", ExpBounded},
		{"noise", "robustness extension (GPS outliers)", ExpNoise},
		{"dirty", "robustness extension (dirty ingest: repair + per-defect-class error)", ExpDirty},
		{"storage", "§I motivation (storage cost in bytes)", ExpStorage},
	}
}

// ExperimentByID finds an experiment by id.
func ExperimentByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0)
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("eval: unknown experiment %q (want one of %v)", id, ids)
}
