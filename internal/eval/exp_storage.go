package eval

import (
	"fmt"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/storage"
)

// ExpStorage quantifies the paper's first motivation — simplification
// cuts storage cost — in actual bytes: raw footprint, after RLTS+
// simplification at several budgets, and after additionally applying the
// delta/varint encoding of internal/storage.
func ExpStorage(c *Context) (*Table, error) {
	tb := &Table{
		ID:      "storage",
		Title:   "Storage cost (Geolife substitute, RLTS+/SED)",
		Columns: []string{"Representation", "Bytes", "Bytes/point of raw", "Reduction"},
	}
	m := errm.SED
	data := c.EvalData(gen.Geolife(), c.Scale.EvalTrajectories, c.Scale.EvalLen)
	tr, err := c.Policy(core.DefaultOptions(m, core.Plus))
	if err != nil {
		return nil, err
	}
	algo := c.rlts(tr)

	var rawBytes, rawPoints int
	for _, t := range data {
		rawBytes += storage.RawSize(t)
		rawPoints += len(t)
	}
	addRow := func(name string, bytes int) {
		tb.AddRow(name,
			fmt.Sprintf("%d", bytes),
			fmt.Sprintf("%.2f", float64(bytes)/float64(rawPoints)),
			fmt.Sprintf("%.1fx", float64(rawBytes)/float64(bytes)))
	}
	addRow("raw (24 B/point)", rawBytes)

	var rawEnc int
	for _, t := range data {
		n, err := storage.EncodedSize(t, storage.DefaultPrecision)
		if err != nil {
			return nil, err
		}
		rawEnc += n
	}
	addRow("raw + delta coding", rawEnc)

	for _, ratio := range []float64{0.5, 0.1} {
		var simpBytes, simpEnc int
		for _, t := range data {
			kept, err := algo.Run(t, budget(len(t), ratio))
			if err != nil {
				return nil, err
			}
			s := t.Pick(kept)
			simpBytes += storage.RawSize(s)
			n, err := storage.EncodedSize(s, storage.DefaultPrecision)
			if err != nil {
				return nil, err
			}
			simpEnc += n
		}
		addRow(fmt.Sprintf("RLTS+ W=%.1f|T|", ratio), simpBytes)
		addRow(fmt.Sprintf("RLTS+ W=%.1f|T| + delta coding", ratio), simpEnc)
	}
	tb.Notes = append(tb.Notes,
		"extension experiment: simplification and delta coding compose multiplicatively; a 10x point cut plus coding yields ~40x fewer bytes")
	return tb, nil
}
