package eval

import (
	"math/rand"

	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/traj"
)

// ExpInference is the inference-mode ablation behind the paper's §VI-A
// choice: "for the online mode, we sample an action with the probability
// outputted by the softmax ... and for the batch mode, we take the action
// with the maximum probability based on empirical findings". It runs both
// selection rules for both an online (RLTS) and a batch (RLTS+) policy.
func ExpInference(c *Context) (*Table, error) {
	tb := &Table{
		ID:      "infer",
		Title:   "Action selection at inference: sampling vs greedy (SED)",
		Columns: []string{"Algorithm", "Selection", "Mean SED error"},
	}
	data := c.EvalData(gen.Geolife(), c.Scale.EvalTrajectories, c.Scale.EvalLen)
	m := errm.SED
	const wRatio = 0.1
	for _, variant := range []core.Variant{core.Online, core.Plus} {
		opts := core.DefaultOptions(m, variant)
		tr, err := c.Policy(opts)
		if err != nil {
			return nil, err
		}
		for _, sample := range []bool{true, false} {
			sel := "greedy"
			if sample {
				sel = "sampling"
			}
			r := rand.New(rand.NewSource(c.Seed + 3))
			a := Algorithm{
				Name: tr.Opts.Name(),
				Run: func(t traj.Trajectory, w int) ([]int, error) {
					return core.Simplify(tr.Policy, t, w, opts, sample, r)
				},
			}
			// Serial RunSet: the closure shares the cached policy (whose
			// network scratch is not concurrency-safe) and one RNG.
			res, err := RunSet(a, data, wRatio, m)
			if err != nil {
				return nil, err
			}
			tb.AddRow(tr.Opts.Name(), sel, fmtErr(res.MeanErr))
		}
	}
	tb.Notes = append(tb.Notes,
		"paper §VI-A: sampling is used online and argmax in batch, 'based on empirical findings'")
	return tb, nil
}
