package eval

import (
	"fmt"
	"math/rand"

	baseOnline "rlts/internal/baseline/online"
	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/geo"
	"rlts/internal/query"
	"rlts/internal/traj"
)

// ExpQuery measures the downstream cost of simplification that motivates
// the whole problem (paper §I: simplification lowers storage and query
// processing cost): how much do query answers computed on the simplified
// trajectory deviate from answers on the raw one? Two probe workloads:
//
//   - position-at-time: mean distance between PositionAt on raw vs
//     simplified data over random probe times;
//   - spatio-temporal range queries: fraction of random (rectangle, time
//     window) probes answered identically.
//
// This is an extension experiment (not a paper table), recorded as such
// in DESIGN.md.
func ExpQuery(c *Context) (*Table, error) {
	tb := &Table{
		ID:      "query",
		Title:   "Query answering on simplified trajectories (W = 0.1|T|, SED policies)",
		Columns: []string{"Algorithm", "Mean position err", "Max position err", "Range agreement"},
	}
	m := errm.SED
	data := c.EvalData(gen.Geolife(), c.Scale.EvalTrajectories, c.Scale.EvalLen)
	const wRatio = 0.1

	var algos []Algorithm
	tr, err := c.Policy(core.DefaultOptions(m, core.Plus))
	if err != nil {
		return nil, err
	}
	algos = append(algos, c.rlts(tr))
	algos = append(algos, BatchBaselines(m)...)
	algos = append(algos, Algorithm{Name: "Uniform", Run: func(t traj.Trajectory, w int) ([]int, error) {
		return baseOnline.Uniform(t, w)
	}})

	for _, a := range algos {
		r := rand.New(rand.NewSource(c.Seed + 17))
		var sumErr, maxErr float64
		var probes, agree, rangeProbes int
		for _, t := range data {
			w := budget(len(t), wRatio)
			kept, err := a.Run(t, w)
			if err != nil {
				return nil, err
			}
			simp := t.Pick(kept)
			t0, t1 := t[0].T, t[len(t)-1].T
			// Position probes.
			for p := 0; p < 25; p++ {
				ts := t0 + r.Float64()*(t1-t0)
				d := geo.Dist(query.PositionAt(t, ts), query.PositionAt(simp, ts))
				sumErr += d
				if d > maxErr {
					maxErr = d
				}
				probes++
			}
			// Range probes centered near the path so both answers occur.
			for p := 0; p < 10; p++ {
				ts := t0 + r.Float64()*(t1-t0)
				center := query.PositionAt(t, ts)
				half := 20 + r.Float64()*200
				rect := query.Rect{
					MinX: center.X - half + r.NormFloat64()*half,
					MinY: center.Y - half + r.NormFloat64()*half,
				}
				rect.MaxX = rect.MinX + 2*half
				rect.MaxY = rect.MinY + 2*half
				wt := (t1 - t0) * (0.02 + r.Float64()*0.1)
				qs := t0 + r.Float64()*(t1-t0-wt)
				rawAns := query.WithinDuring(t, rect, qs, qs+wt)
				simpAns := query.WithinDuring(simp, rect, qs, qs+wt)
				if rawAns == simpAns {
					agree++
				}
				rangeProbes++
			}
		}
		tb.AddRow(a.Name,
			fmt.Sprintf("%.2fm", sumErr/float64(probes)),
			fmt.Sprintf("%.1fm", maxErr),
			fmt.Sprintf("%.1f%%", 100*float64(agree)/float64(rangeProbes)))
	}
	tb.Notes = append(tb.Notes,
		"extension experiment: quantifies the query-quality cost of a 10x compression; lower position error / higher agreement is better")
	return tb, nil
}
