package eval

import (
	baseBatch "rlts/internal/baseline/batch"
	baseOnline "rlts/internal/baseline/online"
	"rlts/internal/errm"
	"rlts/internal/traj"
)

// OnlineBaselines returns the paper's online-mode competitors under
// measure m.
func OnlineBaselines(m errm.Measure) []Algorithm {
	return []Algorithm{
		{Name: "STTrace", Run: func(t traj.Trajectory, w int) ([]int, error) { return baseOnline.STTrace(t, w, m) }},
		{Name: "SQUISH", Run: func(t traj.Trajectory, w int) ([]int, error) { return baseOnline.SQUISH(t, w, m) }},
		{Name: "SQUISH-E", Run: func(t traj.Trajectory, w int) ([]int, error) { return baseOnline.SQUISHE(t, w, m) }},
	}
}

// BatchBaselines returns the approximate batch-mode competitors under
// measure m (Span-Search joins only for DAD, as in the paper).
func BatchBaselines(m errm.Measure) []Algorithm {
	algos := []Algorithm{
		{Name: "Top-Down", Run: func(t traj.Trajectory, w int) ([]int, error) { return baseBatch.TopDown(t, w, m) }},
		{Name: "Bottom-Up", Run: func(t traj.Trajectory, w int) ([]int, error) { return baseBatch.BottomUp(t, w, m) }},
	}
	if m == errm.DAD {
		algos = append(algos, Algorithm{
			Name: "Span-Search",
			Run:  func(t traj.Trajectory, w int) ([]int, error) { return baseBatch.SpanSearch(t, w) },
		})
	}
	return algos
}

// BellmanAlgorithm returns the exact DP as an Algorithm.
func BellmanAlgorithm(m errm.Measure) Algorithm {
	return Algorithm{
		Name: "Bellman",
		Run:  func(t traj.Trajectory, w int) ([]int, error) { return baseBatch.Bellman(t, w, m) },
	}
}
