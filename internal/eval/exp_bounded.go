package eval

import (
	"fmt"
	"time"

	baseOnline "rlts/internal/baseline/online"
	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/gen"
	"rlts/internal/minsize"
	"rlts/internal/traj"
)

// ExpBounded compares the error-bounded backends of the bound=eps
// serving mode — the one-pass CISED/OPERB against the Min-Size search
// over the RL policy and over the greedy dual — on all three dataset
// substitutes. The bound is set per dataset to the mean inter-point
// step (a realistic "about one sample of slack" target). Every result
// is re-scored by the exact oracle; "bound met" counts trajectories.
func ExpBounded(c *Context) (*Table, error) {
	tb := &Table{
		ID:      "bounded",
		Title:   "Error-bounded mode: one-pass vs Min-Size search (bound = mean step)",
		Columns: []string{"Dataset", "Algorithm", "Measure", "Kept %", "Mean error", "Bound met", "Time"},
	}
	type backend struct {
		name string
		m    errm.Measure
		run  func(t traj.Trajectory, eps float64) ([]int, error)
	}
	profiles := []struct {
		name string
		cfg  gen.Config
	}{
		{"Geolife", gen.Geolife()}, {"T-Drive", gen.TDrive()}, {"Truck", gen.Truck()},
	}
	count := efficiencyCount(c)
	for _, pr := range profiles {
		data := c.EvalData(pr.cfg, count, c.Scale.EvalLen)
		eps := meanStep(data)
		backends := []backend{
			{"CISED", errm.SED, baseOnline.CISED},
			{"OPERB", errm.PED, baseOnline.OPERB},
			{"Min-Size(Greedy)", errm.SED, func(t traj.Trajectory, eps float64) ([]int, error) {
				return minsize.Greedy(t, eps, errm.SED)
			}},
		}
		p, err := c.Policy(core.Options{Measure: errm.SED, Variant: core.Plus, K: 3, J: 0})
		if err != nil {
			return nil, err
		}
		backends = append(backends, backend{"Min-Size(RLTS+)", errm.SED, func(t traj.Trajectory, eps float64) ([]int, error) {
			return minsize.SearchBudget(t, eps, errm.SED, p.SimplifyGreedy)
		}})
		for _, b := range backends {
			var kept, total, met int
			var errSum float64
			start := time.Now()
			for _, t := range data {
				ix, err := b.run(t, eps)
				if err != nil {
					return nil, fmt.Errorf("eval: %s on %s: %w", b.name, pr.name, err)
				}
				e := errm.Error(b.m, t, ix)
				kept += len(ix)
				total += len(t)
				errSum += e
				if e <= eps {
					met++
				}
			}
			elapsed := time.Since(start)
			tb.AddRow(pr.name, b.name, b.m.String(),
				fmt.Sprintf("%.1f%%", 100*float64(kept)/float64(total)),
				fmtErr(errSum/float64(len(data))),
				fmt.Sprintf("%d/%d", met, len(data)),
				fmtDur(elapsed))
		}
	}
	tb.Notes = append(tb.Notes,
		"CISED/OPERB guarantee the bound in one O(n) pass; the Min-Size search re-verifies every probe and pays O(n log n) policy runs for it",
		"the search compresses harder (it probes the globally smallest budget) — the one-pass algorithms trade kept points for throughput")
	return tb, nil
}

// meanStep returns the mean inter-point distance across a dataset — the
// natural length scale for an SED/PED bound.
func meanStep(data []traj.Trajectory) float64 {
	var length float64
	var segs int
	for _, t := range data {
		length += t.PathLength()
		segs += len(t) - 1
	}
	if segs == 0 {
		return 1
	}
	return length / float64(segs)
}
