package obs

import (
	"io"
	"log/slog"
)

// NewLogger builds the repo's standard slog logger: text (human) or JSON
// (machine) handler on w at the given level, with source locations off
// (the component attribute identifies the origin; file:line is noise in
// a five-binary repo).
func NewLogger(w io.Writer, level slog.Level, jsonFormat bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if jsonFormat {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// CommandLogger is the setup every cmd/* binary shares: a logger on w
// tagged with the command name, Debug level when verbose, JSON when
// jsonFormat. Commands pass os.Stderr so stdout stays reserved for data.
func CommandLogger(w io.Writer, command string, verbose, jsonFormat bool) *slog.Logger {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	return NewLogger(w, level, jsonFormat).With("component", command)
}
