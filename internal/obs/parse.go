package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its label set and
// the value. Histogram series come back under their rendered names
// (name_bucket with an le label, name_sum, name_count).
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseText parses the Prometheus text exposition format produced by
// WriteText (and by any conforming exporter): # comment lines are
// skipped, every other non-blank line must be name[{labels}] value.
// Timestamps (a third field) are accepted and ignored. The parser exists
// so tests can round-trip the encoder and so the scrape smoke check in
// scripts/check.sh has something honest to validate against; it is not a
// full PromQL-grade parser.
func ParseText(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var out []Sample
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", ln, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want value [timestamp] after %q, got %q", s.Name, rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {k="v",...} block at the start of rest into into,
// returning the index just past the closing brace.
func parseLabels(rest string, into map[string]string) (int, error) {
	i := 1 // past '{'
	for {
		for i < len(rest) && (rest[i] == ',' || rest[i] == ' ') {
			i++
		}
		if i < len(rest) && rest[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(rest[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("unterminated label block in %q", rest)
		}
		key := rest[i : i+eq]
		if !validName(key) {
			return 0, fmt.Errorf("invalid label name %q", key)
		}
		i += eq + 1
		if i >= len(rest) || rest[i] != '"' {
			return 0, fmt.Errorf("label %s: want quoted value", key)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(rest) {
				return 0, fmt.Errorf("label %s: unterminated value", key)
			}
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return 0, fmt.Errorf("label %s: dangling escape", key)
				}
				switch rest[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("label %s: bad escape \\%c", key, rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		into[key] = val.String()
	}
}

// Find returns the value of the first sample matching name and every
// given label (extra labels on the sample are ignored), and whether one
// was found. A test convenience.
func Find(samples []Sample, name string, labels map[string]string) (float64, bool) {
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}
