package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// family groups every series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   kind
	bounds []float64          // histogram bucket bounds
	series map[string]*series // canonical label string -> series
}

// series is one (name, labels) time series.
type series struct {
	labels []Label // sorted by key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry owns a set of metric families and renders them in the
// Prometheus text exposition format. Registration (Counter/Gauge/
// Histogram) is idempotent: asking for the same name and label set twice
// returns the same instance, so packages can declare their metrics in
// var blocks without coordination. Asking for an existing name with a
// different type or bucket layout panics — that is a programming error,
// not a runtime condition.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the library packages
// (core, rl, server) register their metrics in. Commands expose or dump
// this one.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter series for name+labels, creating it (and
// its family) on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.getOrCreate(name, help, counterKind, nil, labels)
	return s.c
}

// Gauge returns the gauge series for name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.getOrCreate(name, help, gaugeKind, nil, labels)
	return s.g
}

// Histogram returns the histogram series for name+labels with the given
// bucket bounds (strictly increasing; +Inf is implicit). All series of
// one family must share the same bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not strictly increasing at %d", name, i))
		}
	}
	s := r.getOrCreate(name, help, histogramKind, bounds, labels)
	return s.h
}

func (r *Registry) getOrCreate(name, help string, k kind, bounds []float64, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %s", l.Key, name))
		}
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	key := labelKey(sorted)

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, series: make(map[string]*series)}
		if k == histogramKind {
			f.bounds = append([]float64(nil), bounds...)
		}
		r.families[name] = f
	} else {
		if f.kind != k {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", name, k, f.kind))
		}
		if k == histogramKind && !equalBounds(f.bounds, bounds) {
			panic(fmt.Sprintf("obs: histogram %s re-registered with different buckets", name))
		}
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: sorted}
		switch k {
		case counterKind:
			s.c = &Counter{}
		case gaugeKind:
			s.g = &Gauge{}
		case histogramKind:
			s.h = newHistogram(f.bounds)
		}
		f.series[key] = s
	}
	return s
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// labelKey builds the canonical series key from sorted labels. Values are
// quoted so the key is unambiguous: joining raw values would canonicalize
// distinct label sets like {a: `1",b="2`} and {a: "1", b: "2"} to the same
// key and silently alias their series.
func labelKey(sorted []Label) string {
	if len(sorted) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	return b.String()
}

// validName checks the Prometheus metric/label name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
