// Package obs is the repo's dependency-free observability kit: counters,
// gauges and fixed-bucket histograms with atomic hot-path updates, a
// registry that renders the Prometheus text exposition format, and a thin
// log/slog setup shared by every command.
//
// The design goals, in order:
//
//  1. Hot-path updates must be cheap enough to leave the simplify/rollout
//     benchmarks within noise (one uncontended atomic op per event, no
//     allocation, no locks). Callers obtain a metric pointer once at setup
//     and hold it; the registry lookup never sits on a hot path.
//  2. No third-party dependencies: the exposition format is a small,
//     stable text protocol and the stdlib provides atomics and slog.
//  3. Deterministic output: families and series render in sorted order so
//     scrapes diff cleanly and tests can compare snapshots.
//
// Concurrency model: all metric updates are lock-free atomics. A scrape
// that races with updates may observe a histogram whose sum is a few
// observations ahead of its buckets (and vice versa); each individual
// value is still a consistent monotone reading, which is the usual
// Prometheus client guarantee.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (in-flight requests, buffer
// occupancy, active sessions). Stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Bounds are the inclusive
// upper edges of each bucket, strictly increasing; one implicit +Inf
// bucket catches the rest. Buckets are chosen at registration and never
// change, so Observe is a bounds scan plus two atomic adds.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper edges (not including +Inf). The slice
// is shared; callers must not modify it.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// cumulative fills dst with the Prometheus-style cumulative bucket counts
// (one per bound, plus the +Inf total at the end).
func (h *Histogram) cumulative(dst []uint64) []uint64 {
	dst = dst[:0]
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		dst = append(dst, acc)
	}
	return dst
}

// ExpBuckets returns n strictly increasing bucket bounds starting at
// start and growing by factor: the standard shape for latency histograms.
// It panics on a non-positive start, a factor <= 1, or n < 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LinearBuckets returns n bounds start, start+width, ... — the shape for
// bounded integer-ish distributions (buffer occupancy, batch sizes).
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("obs: LinearBuckets needs width > 0, n >= 1")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// DefLatencyBuckets spans 100µs to ~13s exponentially: wide enough for
// both the sub-millisecond simplify path and multi-second batch requests.
var DefLatencyBuckets = ExpBuckets(0.0001, 2.4, 14)
