package obs

import (
	"io"
	"testing"
)

// The hot-path contract: one uncontended atomic op per event, zero
// allocations. These benches are part of scripts/check.sh's smoke pass
// (make bench-obs runs them fully).

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeAdd(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "bench", DefLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("bench_par_seconds", "bench", DefLatencyBuckets)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.003)
		}
	})
}

func BenchmarkWriteText(b *testing.B) {
	r := NewRegistry()
	for _, route := range []string{"/v1/simplify", "/v1/stats", "/v1/stream"} {
		r.Counter("req_total", "requests", L("route", route)).Add(10)
		r.Histogram("lat_seconds", "latency", DefLatencyBuckets, L("route", route)).Observe(0.01)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WriteText(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
