package obs

import (
	"bytes"
	"io"
	"math"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "events")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("inflight", "in-flight")
	g.Set(3)
	g.Inc()
	g.Add(-2.5)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", L("route", "/a"))
	b := r.Counter("x_total", "x", L("route", "/a"))
	if a != b {
		t.Error("same name+labels returned different counters")
	}
	other := r.Counter("x_total", "x", L("route", "/b"))
	if a == other {
		t.Error("different labels returned the same counter")
	}
	// Label order must not matter.
	h1 := r.Gauge("y", "y", L("a", "1"), L("b", "2"))
	h2 := r.Gauge("y", "y", L("b", "2"), L("a", "1"))
	if h1 != h2 {
		t.Error("label order changed series identity")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "m")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m_total", "m")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if want := 0.05 + 0.1 + 0.5 + 2 + 100; math.Abs(h.Sum()-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", h.Sum(), want)
	}
	cum := h.cumulative(nil)
	// le=0.1 holds 0.05 and 0.1 (bounds are inclusive), le=1 adds 0.5,
	// le=10 adds 2, +Inf adds 100.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], w)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h", "h", []float64{1, 2})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %g, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

// TestTextRoundTrip is the acceptance check: the encoder's output must be
// parseable Prometheus text format, and the parsed samples must carry the
// exact values that were recorded.
func TestTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "requests", L("route", "/v1/simplify"), L("code", "200")).Add(7)
	r.Counter("req_total", "requests", L("route", "/v1/stats"), L("code", "400")).Add(2)
	r.Gauge("sessions_active", "active sessions").Set(3)
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1}, L("route", "/v1/simplify"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.Gauge("weird", "label with \"quotes\" and \\slashes", L("k", `a"b\c`)).Set(1)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("encoder output does not parse: %v\n%s", err, buf.String())
	}

	checks := []struct {
		name   string
		labels map[string]string
		want   float64
	}{
		{"req_total", map[string]string{"route": "/v1/simplify", "code": "200"}, 7},
		{"req_total", map[string]string{"route": "/v1/stats", "code": "400"}, 2},
		{"sessions_active", nil, 3},
		{"lat_seconds_bucket", map[string]string{"le": "0.1"}, 1},
		{"lat_seconds_bucket", map[string]string{"le": "1"}, 2},
		{"lat_seconds_bucket", map[string]string{"le": "+Inf"}, 3},
		{"lat_seconds_count", nil, 3},
		{"lat_seconds_sum", nil, 5.55},
		{"weird", map[string]string{"k": `a"b\c`}, 1},
	}
	for _, c := range checks {
		got, ok := Find(samples, c.name, c.labels)
		if !ok {
			t.Errorf("%s%v missing from output:\n%s", c.name, c.labels, buf.String())
			continue
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s%v = %g, want %g", c.name, c.labels, got, c.want)
		}
	}

	// Deterministic rendering: a second encode of unchanged state is
	// byte-identical.
	var buf2 bytes.Buffer
	if err := r.WriteText(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("two scrapes of identical state differ")
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "up").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	samples, err := ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := Find(samples, "up_total", nil); !ok || v != 1 {
		t.Errorf("up_total = %g, %v", v, ok)
	}

	resp, err = srv.Client().Post(srv.URL, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("POST status %d, want 405", resp.StatusCode)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	for i, want := range []float64{1, 2, 4, 8} {
		if exp[i] != want {
			t.Errorf("ExpBuckets[%d] = %g, want %g", i, exp[i], want)
		}
	}
	lin := LinearBuckets(0, 5, 3)
	for i, want := range []float64{0, 5, 10} {
		if lin[i] != want {
			t.Errorf("LinearBuckets[%d] = %g, want %g", i, lin[i], want)
		}
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	log := CommandLogger(&buf, "rlts-test", false, true)
	log.Info("hello", "k", 1)
	out := buf.String()
	for _, want := range []string{`"component":"rlts-test"`, `"msg":"hello"`, `"k":1`} {
		if !strings.Contains(out, want) {
			t.Errorf("log line missing %s: %s", want, out)
		}
	}
	// Debug suppressed unless verbose.
	buf.Reset()
	log.Debug("quiet")
	if buf.Len() != 0 {
		t.Errorf("debug logged at info level: %s", buf.String())
	}
	if CommandLogger(&buf, "x", true, false).Enabled(nil, -4) == false {
		t.Error("verbose logger does not enable debug")
	}
}

// TestWriteTextConcurrentRegistration reproduces the scrape-vs-lazy-
// registration race: the server middleware creates a new labeled series
// on live traffic while /metrics encodes, so WriteText must never iterate
// the live series maps outside the registry lock (doing so is a fatal
// "concurrent map iteration and map write" runtime throw, not a
// recoverable panic).
func TestWriteTextConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "req", L("code", "200")) // family exists up front
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			r.Counter("req_total", "req", L("code", strconv.Itoa(i))).Inc()
			r.Gauge("g_"+strconv.Itoa(i%64), "g").Set(1)
			runtime.Gosched() // force interleaving even on GOMAXPROCS=1
		}
	}()
	for i := 0; i < 500; i++ {
		if err := r.WriteText(io.Discard); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		runtime.Gosched()
	}
	wg.Wait()
}

// TestLabelKeyAmbiguity: two distinct label sets whose raw values join to
// the same string must still be distinct series.
func TestLabelKeyAmbiguity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("amb_total", "amb", L("a", "1"), L("b", "2"))
	b := r.Counter("amb_total", "amb", L("a", `1",b="2`))
	if a == b {
		t.Fatal("distinct label sets aliased to one series")
	}
	a.Inc()
	if b.Value() != 0 {
		t.Errorf("aliased counter: b = %d after incrementing a", b.Value())
	}
}
