package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format rendered by WriteText.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every family in the registry in the Prometheus text
// exposition format: a # HELP and # TYPE line per family, then one line
// per series (counters and gauges), or the _bucket/_sum/_count triplet
// (histograms). Families and series render in sorted order, so two
// scrapes of identical state are byte-identical.
func (r *Registry) WriteText(w io.Writer) error {
	// Snapshot every family's series under the read lock before touching
	// the writer: getOrCreate inserts into family.series under the write
	// lock (the server middleware registers a new per-route/code series
	// lazily on live traffic), so iterating the live maps after dropping
	// the lock would be a concurrent map iteration and write — a fatal
	// runtime panic. Snapshotting also keeps slow scrape clients from
	// blocking registration. Series pointers are stable and their values
	// atomic, so encoding outside the lock is safe.
	type famSnapshot struct {
		name   string
		help   string
		kind   kind
		series []*series // sorted by canonical label key
	}
	r.mu.RLock()
	fams := make([]famSnapshot, 0, len(r.families))
	for _, f := range r.families {
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fs := famSnapshot{name: f.name, help: f.help, kind: f.kind,
			series: make([]*series, len(keys))}
		for i, k := range keys {
			fs.series[i] = f.series[k]
		}
		fams = append(fams, fs)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var scratch []uint64
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			var err error
			switch f.kind {
			case counterKind:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels, ""),
					strconv.FormatUint(s.c.Value(), 10))
			case gaugeKind:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels, ""),
					formatFloat(s.g.Value()))
			case histogramKind:
				err = writeHistogram(w, f.name, s, &scratch)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, s *series, scratch *[]uint64) error {
	cum := s.h.cumulative(*scratch)
	*scratch = cum
	for i, b := range s.h.bounds {
		le := renderLabels(s.labels, formatFloat(b))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, cum[i]); err != nil {
			return err
		}
	}
	total := cum[len(cum)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(s.labels, "+Inf"), total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(s.labels, ""),
		formatFloat(s.h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(s.labels, ""), total)
	return err
}

// renderLabels renders {k="v",...}; le, when non-empty, is appended as
// the histogram bucket bound label. Returns "" for an unlabeled series.
func renderLabels(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// Handler returns an http.Handler serving the registry in the text
// exposition format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", TextContentType)
		if req.Method == http.MethodHead {
			return
		}
		// Errors past this point are broken connections; nothing to do.
		_ = r.WriteText(w)
	})
}
