// Package errm implements the four error measurements of the paper — SED,
// PED, DAD and SAD — at three granularities: the error of an anchor segment
// w.r.t. a single point, the error of a segment w.r.t. the sub-trajectory it
// approximates, and the error of a whole simplified trajectory. It also
// provides an incremental error tracker that maintains the trajectory error
// across drop/extend operations, which the RL training loop uses to compute
// rewards in amortized sub-linear time.
//
// # Degenerate geometry
//
// All four measures are total functions over finite inputs: they return a
// finite, well-defined error for every degenerate shape instead of NaN or
// a panic. The conventions, fixed here and enforced by the differential
// harness in internal/check, are:
//
//   - A zero-length anchor segment (equal endpoint locations, as a
//     stationary stretch produces) has no preferred direction: DAD treats
//     it — and a zero-length motion segment — as imposing no direction
//     constraint and contributes 0 (geo.DirectionDistance). SED and PED
//     measure the plain distance to the shared location.
//   - A zero (or negative) time span yields speed 0 (geo.Segment.Speed),
//     so SAD compares against a stationary interpretation rather than
//     dividing by zero; SED's time interpolation collapses to the segment
//     start (geo.Segment.TimeParam) rather than producing NaN.
//   - Extreme but finite coordinates never turn representable errors into
//     NaN/Inf through intermediate overflow: the geo primitives fall back
//     to normalized/halved arithmetic when a difference or squared length
//     overflows float64. Errors whose true value exceeds the float64
//     range saturate to +Inf; two speeds that both saturate compare equal
//     under SAD.
package errm

import (
	"fmt"
	"strings"

	"rlts/internal/geo"
	"rlts/internal/traj"
)

// Measure identifies one of the four error measurements.
type Measure int

const (
	// SED is the synchronized Euclidean distance: the distance between an
	// original point and the time-synchronized position on its anchor
	// segment.
	SED Measure = iota
	// PED is the perpendicular Euclidean distance: the distance between an
	// original point and the closest position on its anchor segment.
	PED
	// DAD is the direction-aware distance: the angular difference (radians)
	// between the anchor segment's heading and the original motion heading.
	DAD
	// SAD is the speed-aware distance: the absolute difference between the
	// anchor segment's constant-speed interpretation and the original
	// motion speed.
	SAD

	numMeasures
)

// Measures lists all supported measures in a stable order.
var Measures = []Measure{SED, PED, DAD, SAD}

// String returns the conventional upper-case name of the measure.
func (m Measure) String() string {
	switch m {
	case SED:
		return "SED"
	case PED:
		return "PED"
	case DAD:
		return "DAD"
	case SAD:
		return "SAD"
	default:
		return fmt.Sprintf("Measure(%d)", int(m))
	}
}

// Valid reports whether m is one of the defined measures.
func (m Measure) Valid() bool { return m >= 0 && m < numMeasures }

// Parse converts a (case-insensitive) measure name to a Measure.
func Parse(name string) (Measure, error) {
	switch {
	case strings.EqualFold(name, "sed"):
		return SED, nil
	case strings.EqualFold(name, "ped"):
		return PED, nil
	case strings.EqualFold(name, "dad"):
		return DAD, nil
	case strings.EqualFold(name, "sad"):
		return SAD, nil
	}
	return 0, fmt.Errorf("errm: unknown measure %q (want SED, PED, DAD or SAD)", name)
}

// PointError returns eps(seg | p): the error of using the anchor segment
// T[a]T[b] in place of the original motion at point T[i], where a <= i <= b.
//
// For SED and PED this is a point-to-segment distance. For DAD and SAD the
// error is attributed to the original motion segment starting at T[i]
// (or ending at it, when i == b), compared against the anchor segment.
func PointError(m Measure, t traj.Trajectory, a, i, b int) float64 {
	anchor := t.Segment(a, b)
	switch m {
	case SED:
		return geo.SynchronizedDistance(anchor, t[i])
	case PED:
		return geo.PerpendicularDistance(anchor, t[i])
	case DAD:
		return geo.DirectionDistance(anchor, motionAt(t, i, b))
	case SAD:
		return geo.SpeedDistance(anchor, motionAt(t, i, b))
	default:
		panic(fmt.Sprintf("errm: invalid measure %d", int(m)))
	}
}

// motionAt returns the original motion segment attributed to point i:
// the segment from T[i] to T[i+1], falling back to the incoming segment
// for the last point of the anchor span.
func motionAt(t traj.Trajectory, i, b int) geo.Segment {
	if i < b {
		return t.Segment(i, i+1)
	}
	return t.Segment(i-1, i)
}

// SegmentError returns the error of the anchor segment T[a]T[b] w.r.t. the
// sub-trajectory T[a..b] it approximates: the maximum error over the points
// (for SED/PED) or original motion segments (for DAD/SAD) it covers.
// Adjacent anchors (b == a+1) have zero error by construction.
func SegmentError(m Measure, t traj.Trajectory, a, b int) float64 {
	if b <= a+1 {
		return 0
	}
	anchor := t.Segment(a, b)
	var worst float64
	switch m {
	case SED:
		for i := a + 1; i < b; i++ {
			if d := geo.SynchronizedDistance(anchor, t[i]); d > worst {
				worst = d
			}
		}
	case PED:
		for i := a + 1; i < b; i++ {
			if d := geo.PerpendicularDistance(anchor, t[i]); d > worst {
				worst = d
			}
		}
	case DAD:
		for i := a; i < b; i++ {
			if d := geo.DirectionDistance(anchor, t.Segment(i, i+1)); d > worst {
				worst = d
			}
		}
	case SAD:
		for i := a; i < b; i++ {
			if d := geo.SpeedDistance(anchor, t.Segment(i, i+1)); d > worst {
				worst = d
			}
		}
	default:
		panic(fmt.Sprintf("errm: invalid measure %d", int(m)))
	}
	return worst
}

// OnlineValue returns the buffer-local value of a candidate drop point in
// the online mode (Eq. 1 with the paper's DAD/SAD adaptation): for SED and
// PED it is the distance from cur to the segment prev-next; for DAD and SAD
// it is the angular/speed difference between the two buffer segments
// adjacent to cur, since the original successor of cur may no longer be
// accessible online.
func OnlineValue(m Measure, prev, cur, next geo.Point) float64 {
	switch m {
	case SED:
		return geo.SynchronizedDistance(geo.Seg(prev, next), cur)
	case PED:
		return geo.PerpendicularDistance(geo.Seg(prev, next), cur)
	case DAD:
		return geo.DirectionDistance(geo.Seg(prev, cur), geo.Seg(cur, next))
	case SAD:
		return geo.SpeedDistance(geo.Seg(prev, cur), geo.Seg(cur, next))
	default:
		panic(fmt.Sprintf("errm: invalid measure %d", int(m)))
	}
}
