package errm

import (
	"fmt"

	"rlts/internal/traj"
)

// Error returns eps(T') for the simplified trajectory identified by the
// strictly increasing kept indices (which must start at 0 and end at
// len(t)-1): the maximum segment error over all anchor segments.
// This is the Min-Error objective the paper minimizes.
func Error(m Measure, t traj.Trajectory, kept []int) float64 {
	if err := checkKept(t, kept); err != nil {
		panic(err)
	}
	var worst float64
	for i := 1; i < len(kept); i++ {
		if e := SegmentError(m, t, kept[i-1], kept[i]); e > worst {
			worst = e
		}
	}
	return worst
}

// MeanError returns the mean per-point error of the simplified trajectory:
// the average over all original points of the error w.r.t. their anchor
// segments. It is not the paper's objective but is useful as a secondary
// diagnostic (a simplification can have a small max error but a poor fit
// everywhere, or vice versa).
func MeanError(m Measure, t traj.Trajectory, kept []int) float64 {
	if err := checkKept(t, kept); err != nil {
		panic(err)
	}
	if len(t) == 0 {
		return 0
	}
	var sum float64
	var cnt int
	for i := 1; i < len(kept); i++ {
		a, b := kept[i-1], kept[i]
		for j := a + 1; j < b; j++ {
			sum += PointError(m, t, a, j, b)
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// ErrorOfTrajectory computes eps(T') when the simplified trajectory is
// given as points rather than indices. Every point of simplified must
// appear in t (it must be a genuine simplification); otherwise an error is
// returned.
func ErrorOfTrajectory(m Measure, t, simplified traj.Trajectory) (float64, error) {
	kept, err := KeptIndices(t, simplified)
	if err != nil {
		return 0, err
	}
	return Error(m, t, kept), nil
}

// KeptIndices maps a simplified trajectory back to the indices of its
// points in the original trajectory.
func KeptIndices(t, simplified traj.Trajectory) ([]int, error) {
	kept := make([]int, 0, len(simplified))
	j := 0
	for si, p := range simplified {
		for j < len(t) && !t[j].Equal(p) {
			j++
		}
		if j == len(t) {
			return nil, fmt.Errorf("errm: simplified point %d (%v) not found in original", si, p)
		}
		kept = append(kept, j)
		j++
	}
	if len(kept) < 2 || kept[0] != 0 || kept[len(kept)-1] != len(t)-1 {
		return nil, fmt.Errorf("errm: simplified trajectory must keep both endpoints")
	}
	return kept, nil
}

// CheckKept reports whether kept is a well-formed simplification index set
// for t: at least two strictly increasing indices spanning [0, len(t)-1].
// It is the non-panicking form of the validation Error performs, for
// callers handling untrusted simplifier output (e.g. minsize.SearchBudget
// probing an arbitrary MinErrorFunc).
func CheckKept(t traj.Trajectory, kept []int) error {
	return checkKept(t, kept)
}

func checkKept(t traj.Trajectory, kept []int) error {
	if len(kept) < 2 {
		return fmt.Errorf("errm: need at least 2 kept indices, got %d", len(kept))
	}
	if kept[0] != 0 || kept[len(kept)-1] != len(t)-1 {
		return fmt.Errorf("errm: kept indices must span [0, %d], got [%d, %d]",
			len(t)-1, kept[0], kept[len(kept)-1])
	}
	for i := 1; i < len(kept); i++ {
		if kept[i] <= kept[i-1] {
			return fmt.Errorf("errm: kept indices not strictly increasing at %d", i)
		}
	}
	return nil
}
