package errm

import (
	"math/rand"
	"testing"

	"rlts/internal/geo"
	"rlts/internal/traj"
)

func benchTraj(n int) traj.Trajectory {
	r := rand.New(rand.NewSource(1))
	t := make(traj.Trajectory, n)
	x, y := 0.0, 0.0
	for i := range t {
		x += r.Float64()*10 - 4
		y += r.Float64()*10 - 5
		t[i] = geo.Pt(x, y, float64(i)*3)
	}
	return t
}

var sinkF float64

// BenchmarkSegmentError measures the span scan behind n' in the paper's
// complexity analysis, at a typical span width.
func BenchmarkSegmentError(b *testing.B) {
	t := benchTraj(1000)
	for _, m := range Measures {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF = SegmentError(m, t, 100, 120) // 20-point span
			}
		})
	}
}

func BenchmarkOnlineValue(b *testing.B) {
	t := benchTraj(10)
	for _, m := range Measures {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF = OnlineValue(m, t[0], t[1], t[2])
			}
		})
	}
}

// BenchmarkTrackerDrop measures the incremental reward-computation cost
// per MDP transition during training.
func BenchmarkTrackerDrop(b *testing.B) {
	t := benchTraj(10000)
	r := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; {
		b.StopTimer()
		tk := NewFullTracker(SED, t)
		b.StartTimer()
		for tk.Count() > len(t)/2 && i < b.N {
			kept := tk.Kept()
			tk.Drop(kept[1+r.Intn(len(kept)-2)])
			i++
		}
	}
}

// BenchmarkFullError measures the evaluation-side error computation the
// harness performs after every simplification.
func BenchmarkFullError(b *testing.B) {
	t := benchTraj(5000)
	kept := make([]int, 0, 500)
	for i := 0; i < 5000; i += 10 {
		kept = append(kept, i)
	}
	kept = append(kept, 4999)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF = Error(SED, t, kept)
	}
}
