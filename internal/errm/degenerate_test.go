package errm

import (
	"math"
	"testing"

	"rlts/internal/geo"
	"rlts/internal/traj"
)

// Degenerate-geometry contracts of the package doc: every measure returns
// a finite, documented value on zero-length anchors, zero time spans and
// stationary stretches. These shapes reach the measures both through
// valid trajectories (equal locations, increasing timestamps) and — for
// OnlineValue, which takes raw points — through arbitrary caller input.

func assertFinite(t *testing.T, name string, v float64) {
	t.Helper()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("%s = %v, want finite", name, v)
	}
}

func TestZeroLengthAnchorAllMeasures(t *testing.T) {
	// Anchor endpoints share a location: the object sat still while the
	// interior point wandered off.
	tr := traj.Trajectory{
		geo.Pt(1, 1, 0),
		geo.Pt(4, 5, 1), // interior, 5 away from the anchor location
		geo.Pt(1, 1, 2),
	}
	for _, m := range Measures {
		v := PointError(m, tr, 0, 1, 2)
		assertFinite(t, "PointError "+m.String(), v)
		s := SegmentError(m, tr, 0, 2)
		assertFinite(t, "SegmentError "+m.String(), s)
	}
	// SED against a zero-length anchor is the distance to the shared
	// location, time-independent.
	if v := PointError(SED, tr, 0, 1, 2); math.Abs(v-5) > 1e-12 {
		t.Errorf("SED zero-length anchor = %v, want 5", v)
	}
	if v := PointError(PED, tr, 0, 1, 2); math.Abs(v-5) > 1e-12 {
		t.Errorf("PED zero-length anchor = %v, want 5", v)
	}
	// DAD: a zero-length anchor imposes no direction constraint.
	if v := PointError(DAD, tr, 0, 1, 2); v != 0 {
		t.Errorf("DAD zero-length anchor = %v, want 0", v)
	}
}

func TestStationaryStretchZeroError(t *testing.T) {
	// A fully stationary trajectory simplified to its endpoints has zero
	// error under every measure: nothing moved, nothing is lost.
	tr := traj.Trajectory{
		geo.Pt(2, 3, 0),
		geo.Pt(2, 3, 1),
		geo.Pt(2, 3, 2),
		geo.Pt(2, 3, 5),
	}
	for _, m := range Measures {
		if e := Error(m, tr, []int{0, 3}); e != 0 {
			t.Errorf("%s stationary error = %v, want 0", m, e)
		}
	}
}

func TestZeroTimeSpanOnlineValue(t *testing.T) {
	// OnlineValue takes raw points, so a duplicate timestamp can reach it
	// directly. The anchor prev-next then has zero duration: SED collapses
	// to the segment start, SAD to a stationary interpretation.
	prev := geo.Pt(0, 0, 5)
	cur := geo.Pt(1, 1, 5)
	next := geo.Pt(2, 0, 5)
	for _, m := range Measures {
		assertFinite(t, "OnlineValue "+m.String(), OnlineValue(m, prev, cur, next))
	}
	// SED with a zero time span interpolates to prev's location.
	want := geo.Dist(cur, prev)
	if v := OnlineValue(SED, prev, cur, next); math.Abs(v-want) > 1e-12 {
		t.Errorf("SED zero time span = %v, want %v", v, want)
	}
	// SAD: both buffer segments have zero duration, both speeds are 0.
	if v := OnlineValue(SAD, prev, cur, next); v != 0 {
		t.Errorf("SAD zero time span = %v, want 0", v)
	}
}

func TestDuplicateTimestampTrajectoryFinite(t *testing.T) {
	// Raw trajectories with duplicate timestamps fail traj.Validate but
	// the measures must still be total over them (internal callers build
	// trajectories without revalidating).
	tr := traj.Trajectory{
		geo.Pt(0, 0, 0),
		geo.Pt(1, 2, 1),
		geo.Pt(3, 1, 1), // duplicate timestamp
		geo.Pt(4, 4, 2),
	}
	for _, m := range Measures {
		for i := 1; i < 3; i++ {
			assertFinite(t, "PointError "+m.String(), PointError(m, tr, 0, i, 3))
		}
		assertFinite(t, "SegmentError "+m.String(), SegmentError(m, tr, 0, 3))
		assertFinite(t, "Error "+m.String(), Error(m, tr, []int{0, 3}))
	}
}

func TestExtremeCoordinatesNoNaN(t *testing.T) {
	// Coordinates large enough to overflow intermediate squares and
	// differences, but whose true errors are representable: no NaN and no
	// spurious Inf may escape (the regression class fixed alongside the
	// internal/check harness: ClosestParam, Lerp, Speed, SpeedDistance).
	tr := traj.Trajectory{
		geo.Pt(-1e160, -1e160, 0),
		geo.Pt(1, 1, 1),
		geo.Pt(1e160, 1e160, 2),
	}
	for _, m := range Measures {
		v := PointError(m, tr, 0, 1, 2)
		assertFinite(t, "PointError extreme "+m.String(), v)
	}
	// Opposite extremes on one axis: the SED interpolant at the midpoint
	// is representable even though B.X - A.X overflows.
	tr2 := traj.Trajectory{
		geo.Pt(1e308, 0, 0),
		geo.Pt(0, 1, 0.5),
		geo.Pt(-1e308, 0, 1),
	}
	v := PointError(SED, tr2, 0, 1, 2)
	assertFinite(t, "SED opposite extremes", v)
	if math.Abs(v-1) > 1e-9 {
		t.Errorf("SED opposite extremes = %v, want 1 (midpoint is the origin)", v)
	}
	v = PointError(PED, tr2, 0, 1, 2)
	assertFinite(t, "PED opposite extremes", v)
	if math.Abs(v-1) > 1e-9 {
		t.Errorf("PED opposite extremes = %v, want 1", v)
	}
	assertFinite(t, "SAD opposite extremes", PointError(SAD, tr2, 0, 1, 2))
	assertFinite(t, "DAD opposite extremes", PointError(DAD, tr2, 0, 1, 2))
}
