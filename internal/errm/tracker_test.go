package errm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rlts/internal/geo"
	"rlts/internal/traj"
)

func randomTraj(r *rand.Rand, n int) traj.Trajectory {
	t := make(traj.Trajectory, n)
	x, y := 0.0, 0.0
	for i := range t {
		x += r.Float64()*2 - 0.5
		y += r.Float64()*2 - 1
		t[i] = geo.Pt(x, y, float64(i)+r.Float64()*0.5)
	}
	return t
}

func TestTrackerMatchesFullRecompute(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		tr := randomTraj(r, 30)
		for _, m := range Measures {
			tk := NewFullTracker(m, tr)
			if tk.Err() != 0 {
				t.Fatalf("%v: full tracker initial error = %v, want 0", m, tk.Err())
			}
			// Drop random interior points down to 5 kept.
			for tk.Count() > 5 {
				kept := tk.Kept()
				i := kept[1+r.Intn(len(kept)-2)]
				got := tk.Drop(i)
				want := Error(m, tr, tk.Kept())
				if !almost(got, want) {
					t.Fatalf("%v: tracker error %v, recompute %v after dropping %d", m, got, want, i)
				}
			}
		}
	}
}

func TestTrackerExtendAndDropOnline(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	tr := randomTraj(r, 40)
	m := SED
	tk := NewTracker(m, tr)
	if tk.Count() != 1 || tk.Tail() != 0 {
		t.Fatal("fresh tracker should keep only index 0")
	}
	// Simulate online processing with skips: extend by 1..3, occasionally drop.
	i := 0
	for i < 39 {
		step := 1 + r.Intn(3)
		if i+step > 39 {
			step = 39 - i
		}
		i += step
		tk.ExtendTo(i)
		if tk.Count() > 4 && r.Intn(2) == 0 {
			kept := tk.Kept()
			drop := kept[1+r.Intn(len(kept)-2)]
			tk.Drop(drop)
		}
		// Cross-check against recompute over the scanned prefix.
		kept := tk.Kept()
		want := Error(m, tr.Sub(0, i), kept)
		if !almost(tk.Err(), want) {
			t.Fatalf("at i=%d: tracker %v, recompute %v (kept %v)", i, tk.Err(), want, kept)
		}
	}
}

func TestTrackerDropEndpointPanics(t *testing.T) {
	tr := randomTraj(rand.New(rand.NewSource(1)), 10)
	tk := NewFullTracker(SED, tr)
	for _, i := range []int{0, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Drop(%d) endpoint did not panic", i)
				}
			}()
			tk.Drop(i)
		}()
	}
	tk.Drop(5)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Drop did not panic")
			}
		}()
		tk.Drop(5)
	}()
}

func TestTrackerExtendValidation(t *testing.T) {
	tr := randomTraj(rand.New(rand.NewSource(2)), 10)
	tk := NewTracker(SED, tr)
	tk.ExtendTo(3)
	for _, i := range []int{3, 2, 10, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ExtendTo(%d) did not panic", i)
				}
			}()
			tk.ExtendTo(i)
		}()
	}
}

func TestTrackerNeighbours(t *testing.T) {
	tr := randomTraj(rand.New(rand.NewSource(3)), 8)
	tk := NewFullTracker(PED, tr)
	tk.Drop(3)
	if tk.Next(2) != 4 || tk.Prev(4) != 2 {
		t.Errorf("chain not bridged: next(2)=%d prev(4)=%d", tk.Next(2), tk.Prev(4))
	}
	if tk.IsKept(3) {
		t.Error("dropped point still kept")
	}
	if !tk.IsKept(2) || !tk.IsKept(4) {
		t.Error("neighbours lost")
	}
}

func TestLazyMax(t *testing.T) {
	var l lazyMax
	if l.Max() != 0 {
		t.Error("empty Max != 0")
	}
	l.Push(3)
	l.Push(1)
	l.Push(3)
	l.Push(2)
	if l.Max() != 3 || l.Len() != 4 {
		t.Fatalf("Max=%v Len=%d", l.Max(), l.Len())
	}
	l.Remove(3)
	if l.Max() != 3 { // second copy of 3 still live
		t.Errorf("Max after one Remove(3) = %v, want 3", l.Max())
	}
	l.Remove(3)
	if l.Max() != 2 {
		t.Errorf("Max = %v, want 2", l.Max())
	}
	l.Remove(2)
	l.Remove(1)
	if l.Max() != 0 || l.Len() != 0 {
		t.Errorf("emptied: Max=%v Len=%d", l.Max(), l.Len())
	}
}

func TestLazyMaxProperty(t *testing.T) {
	// Against a reference slice implementation.
	f := func(ops []int16) bool {
		var l lazyMax
		var ref []float64
		for _, op := range ops {
			v := float64(op%100) / 4
			if op%3 == 0 && len(ref) > 0 {
				// remove an existing element
				ix := int(uint16(op)) % len(ref)
				l.Remove(ref[ix])
				ref = append(ref[:ix], ref[ix+1:]...)
			} else {
				l.Push(v)
				ref = append(ref, v)
			}
			want := 0.0
			for _, x := range ref {
				if x > want {
					want = x
				}
			}
			if len(ref) > 0 {
				// Max over possibly negative refs: recompute properly.
				want = ref[0]
				for _, x := range ref[1:] {
					if x > want {
						want = x
					}
				}
			}
			if got := l.Max(); (len(ref) == 0 && got != 0) || (len(ref) > 0 && got != want) {
				return false
			}
			if l.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTrackerRandomOpsProperty(t *testing.T) {
	f := func(seed int64, sizeByte uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + int(sizeByte)%30
		tr := randomTraj(r, n)
		m := Measures[int(sizeByte)%len(Measures)]
		tk := NewFullTracker(m, tr)
		for tk.Count() > 3 {
			kept := tk.Kept()
			tk.Drop(kept[1+r.Intn(len(kept)-2)])
			if !almost(tk.Err(), Error(m, tr, tk.Kept())) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
