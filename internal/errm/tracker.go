package errm

import (
	"container/heap"
	"fmt"

	"rlts/internal/traj"
)

// Tracker maintains the error of an evolving simplified trajectory under
// drop and extend operations. It is the substrate for computing the MDP
// reward r = eps(T'_before) - eps(T'_after) (Eq. 8) incrementally during
// policy training: a naive recomputation would cost O(n) per transition on
// the whole prefix, while the tracker only rescans the span bridged by the
// dropped point.
//
// A Tracker views the simplification as a set of kept original indices
// forming a linked chain. Each chain link (a, b) carries the segment error
// SegmentError(m, t, a, b); the trajectory error is the maximum link error,
// maintained with a lazy-deletion max-heap since dropping a point removes
// two links and adds one, which can lower the maximum.
type Tracker struct {
	m    Measure
	t    traj.Trajectory
	prev []int // prev[i] = kept predecessor of kept index i, -1 at head
	next []int // next[i] = kept successor of kept index i, -1 at tail
	in   []bool
	tail int // last kept index, -1 before the first Extend
	kept int

	segErr map[int]float64 // link start index -> link error
	maxima lazyMax
}

// NewTracker returns a tracker over t containing only the first point.
// Use ExtendTo to append further kept points (online processing) or
// NewFullTracker to start from the complete trajectory (batch processing).
func NewTracker(m Measure, t traj.Trajectory) *Tracker {
	if len(t) < 1 {
		panic("errm: NewTracker on empty trajectory")
	}
	tr := &Tracker{
		m:      m,
		t:      t,
		prev:   make([]int, len(t)),
		next:   make([]int, len(t)),
		in:     make([]bool, len(t)),
		tail:   0,
		kept:   1,
		segErr: make(map[int]float64),
	}
	for i := range tr.prev {
		tr.prev[i], tr.next[i] = -1, -1
	}
	tr.in[0] = true
	return tr
}

// NewFullTracker returns a tracker with every point of t kept, as the
// variable-size-buffer algorithms (RLTS++) start from.
func NewFullTracker(m Measure, t traj.Trajectory) *Tracker {
	tr := NewTracker(m, t)
	for i := 1; i < len(t); i++ {
		tr.ExtendTo(i)
	}
	return tr
}

// ExtendTo appends original index i as the new tail of the kept chain.
// The new link (old tail, i) covers any original points in between (which
// happens when points were skipped).
func (tr *Tracker) ExtendTo(i int) {
	if i <= tr.tail || i >= len(tr.t) {
		panic(fmt.Sprintf("errm: ExtendTo(%d) invalid with tail %d, len %d", i, tr.tail, len(tr.t)))
	}
	a := tr.tail
	tr.next[a] = i
	tr.prev[i] = a
	tr.in[i] = true
	tr.tail = i
	tr.kept++
	tr.addLink(a, i)
}

// Drop removes kept interior index i from the chain, bridging its
// neighbours, and returns the new trajectory error.
func (tr *Tracker) Drop(i int) float64 {
	if i < 0 || i >= len(tr.t) || !tr.in[i] {
		panic(fmt.Sprintf("errm: Drop(%d) not kept", i))
	}
	a, b := tr.prev[i], tr.next[i]
	if a < 0 || b < 0 {
		panic(fmt.Sprintf("errm: Drop(%d) is an endpoint of the chain", i))
	}
	tr.removeLink(a)
	tr.removeLink(i)
	tr.in[i] = false
	tr.prev[i], tr.next[i] = -1, -1
	tr.next[a] = b
	tr.prev[b] = a
	tr.kept--
	tr.addLink(a, b)
	return tr.Err()
}

// Err returns the current trajectory error: the maximum link error.
func (tr *Tracker) Err() float64 { return tr.maxima.Max() }

// Kept returns the kept original indices in increasing order.
func (tr *Tracker) Kept() []int {
	out := make([]int, 0, tr.kept)
	for i := 0; i != -1; i = tr.next[i] {
		out = append(out, i)
		if tr.next[i] == -1 {
			break
		}
	}
	return out
}

// Count returns the number of kept points.
func (tr *Tracker) Count() int { return tr.kept }

// Tail returns the last kept original index.
func (tr *Tracker) Tail() int { return tr.tail }

// IsKept reports whether original index i is currently kept.
func (tr *Tracker) IsKept(i int) bool { return tr.in[i] }

// Prev and Next expose the kept chain neighbours of a kept index
// (-1 at the chain ends).
func (tr *Tracker) Prev(i int) int { return tr.prev[i] }

// Next returns the kept successor of kept index i, or -1 at the tail.
func (tr *Tracker) Next(i int) int { return tr.next[i] }

// LinkError returns the stored error of the link starting at kept index a.
func (tr *Tracker) LinkError(a int) float64 { return tr.segErr[a] }

func (tr *Tracker) addLink(a, b int) {
	e := SegmentError(tr.m, tr.t, a, b)
	tr.segErr[a] = e
	tr.maxima.Push(e)
}

func (tr *Tracker) removeLink(a int) {
	e, ok := tr.segErr[a]
	if !ok {
		panic(fmt.Sprintf("errm: removing unknown link at %d", a))
	}
	delete(tr.segErr, a)
	tr.maxima.Remove(e)
}

// lazyMax is a multiset of float64 supporting Push, Remove and Max in
// O(log n) amortized, implemented as a max-heap with a deferred-deletion
// count map.
type lazyMax struct {
	h     maxHeap
	dead  map[float64]int
	alive int
}

// Push adds v to the multiset.
func (l *lazyMax) Push(v float64) {
	heap.Push(&l.h, v)
	l.alive++
}

// Remove deletes one occurrence of v, which must have been pushed before.
func (l *lazyMax) Remove(v float64) {
	if l.dead == nil {
		l.dead = make(map[float64]int)
	}
	l.dead[v]++
	l.alive--
}

// Max returns the largest live value, or 0 if the multiset is empty.
func (l *lazyMax) Max() float64 {
	for l.h.Len() > 0 {
		top := l.h[0]
		if n := l.dead[top]; n > 0 {
			if n == 1 {
				delete(l.dead, top)
			} else {
				l.dead[top] = n - 1
			}
			heap.Pop(&l.h)
			continue
		}
		return top
	}
	return 0
}

// Len returns the number of live values.
func (l *lazyMax) Len() int { return l.alive }

type maxHeap []float64

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i] > h[j] }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
