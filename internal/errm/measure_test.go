package errm

import (
	"math"
	"testing"
	"testing/quick"

	"rlts/internal/geo"
	"rlts/internal/traj"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// zigzag builds a trajectory that alternates y between 0 and amp.
func zigzag(n int, amp float64) traj.Trajectory {
	t := make(traj.Trajectory, n)
	for i := range t {
		y := 0.0
		if i%2 == 1 {
			y = amp
		}
		t[i] = geo.Pt(float64(i), y, float64(i))
	}
	return t
}

// straight builds a constant-velocity straight-line trajectory.
func straight(n int) traj.Trajectory {
	t := make(traj.Trajectory, n)
	for i := range t {
		t[i] = geo.Pt(float64(i), 0, float64(i))
	}
	return t
}

func TestMeasureString(t *testing.T) {
	want := map[Measure]string{SED: "SED", PED: "PED", DAD: "DAD", SAD: "SAD"}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("String(%d) = %q, want %q", int(m), m.String(), s)
		}
		if !m.Valid() {
			t.Errorf("%v not valid", m)
		}
	}
	if Measure(99).Valid() {
		t.Error("Measure(99) reported valid")
	}
}

func TestParse(t *testing.T) {
	for _, m := range Measures {
		got, err := Parse(m.String())
		if err != nil || got != m {
			t.Errorf("Parse(%q) = %v, %v", m.String(), got, err)
		}
		got, err = Parse("s" + m.String()[1:]) // lower first char variant
		_ = got
		_ = err
	}
	if m, err := Parse("sed"); err != nil || m != SED {
		t.Errorf("Parse lowercase failed: %v, %v", m, err)
	}
	if _, err := Parse("nope"); err == nil {
		t.Error("Parse accepted garbage")
	}
}

func TestPointErrorSED(t *testing.T) {
	// Points at x = 0..4, all on x-axis, except p2 at y=3.
	tr := straight(5)
	tr[2].Y = 3
	// Anchor 0->4; at t=2 the synced point is (2,0); SED = 3.
	if got := PointError(SED, tr, 0, 2, 4); !almost(got, 3) {
		t.Errorf("SED = %v, want 3", got)
	}
}

func TestPointErrorPED(t *testing.T) {
	tr := straight(5)
	tr[2] = geo.Pt(2, 4, 2)
	if got := PointError(PED, tr, 0, 2, 4); !almost(got, 4) {
		t.Errorf("PED = %v, want 4", got)
	}
}

func TestPointErrorDAD(t *testing.T) {
	// Motion turns 90 degrees at p2: east then north.
	tr := traj.Trajectory{
		geo.Pt(0, 0, 0), geo.Pt(1, 0, 1), geo.Pt(2, 0, 2),
		geo.Pt(2, 1, 3), geo.Pt(2, 2, 4),
	}
	// Anchor 0->2 is due east; motion at p1 is east: DAD 0.
	if got := PointError(DAD, tr, 0, 1, 2); !almost(got, 0) {
		t.Errorf("DAD east/east = %v, want 0", got)
	}
	// Anchor 0->4 is diagonal (45 deg); motion at p2 is north (90 deg).
	want := math.Pi/2 - math.Atan2(2, 2)
	if got := PointError(DAD, tr, 0, 2, 4); !almost(got, want) {
		t.Errorf("DAD = %v, want %v", got, want)
	}
	// Last point of span uses the incoming motion segment.
	if got := PointError(DAD, tr, 0, 4, 4); got < 0 {
		t.Errorf("DAD at terminal = %v, want >= 0", got)
	}
}

func TestPointErrorSAD(t *testing.T) {
	// Constant location spacing 1 but time gap doubles after p2.
	tr := traj.Trajectory{
		geo.Pt(0, 0, 0), geo.Pt(1, 0, 1), geo.Pt(2, 0, 2),
		geo.Pt(3, 0, 4), geo.Pt(4, 0, 6),
	}
	// Anchor 0->4: length 4 over 6s = 2/3. Motion at p3 is 1 per 2s = 0.5.
	if got := PointError(SAD, tr, 0, 3, 4); !almost(got, 4.0/6-0.5) {
		t.Errorf("SAD = %v, want %v", got, 4.0/6-0.5)
	}
}

func TestSegmentErrorAdjacentZero(t *testing.T) {
	tr := zigzag(6, 5)
	for _, m := range Measures {
		if got := SegmentError(m, tr, 2, 3); got != 0 {
			t.Errorf("%v adjacent segment error = %v, want 0", m, got)
		}
	}
}

func TestSegmentErrorStraightLineZero(t *testing.T) {
	tr := straight(10)
	for _, m := range Measures {
		if got := SegmentError(m, tr, 0, 9); !almost(got, 0) {
			t.Errorf("%v straight-line error = %v, want 0", m, got)
		}
	}
}

func TestSegmentErrorZigzag(t *testing.T) {
	tr := zigzag(5, 4)
	// Anchor 0->4 lies on the x axis; odd points are at y=4.
	if got := SegmentError(SED, tr, 0, 4); !almost(got, 4) {
		t.Errorf("SED zigzag = %v, want 4", got)
	}
	if got := SegmentError(PED, tr, 0, 4); !almost(got, 4) {
		t.Errorf("PED zigzag = %v, want 4", got)
	}
	if got := SegmentError(DAD, tr, 0, 4); got <= 0 {
		t.Errorf("DAD zigzag = %v, want > 0", got)
	}
}

func TestSegmentErrorMonotoneUnderContainmentSED(t *testing.T) {
	// Widening the span can only add candidate points, but the anchor also
	// changes, so instead verify the max-definition: error over [a,b]
	// >= error contribution of any single interior point.
	tr := zigzag(9, 3)
	e := SegmentError(SED, tr, 0, 8)
	for i := 1; i < 8; i++ {
		if pe := PointError(SED, tr, 0, i, 8); pe > e+1e-12 {
			t.Errorf("point %d error %v exceeds segment error %v", i, pe, e)
		}
	}
}

func TestOnlineValue(t *testing.T) {
	prev, cur, next := geo.Pt(0, 0, 0), geo.Pt(1, 2, 1), geo.Pt(2, 0, 2)
	// SED: synced position at t=1 on prev->next is (1,0); distance 2.
	if got := OnlineValue(SED, prev, cur, next); !almost(got, 2) {
		t.Errorf("OnlineValue SED = %v, want 2", got)
	}
	if got := OnlineValue(PED, prev, cur, next); !almost(got, 2) {
		t.Errorf("OnlineValue PED = %v, want 2", got)
	}
	// DAD: angle between prev->cur and cur->next.
	want := geo.DirectionDistance(geo.Seg(prev, cur), geo.Seg(cur, next))
	if got := OnlineValue(DAD, prev, cur, next); !almost(got, want) {
		t.Errorf("OnlineValue DAD = %v, want %v", got, want)
	}
	// SAD: both halves have equal speed sqrt(5); value 0.
	if got := OnlineValue(SAD, prev, cur, next); !almost(got, 0) {
		t.Errorf("OnlineValue SAD = %v, want 0", got)
	}
}

func TestErrorEndToEnd(t *testing.T) {
	tr := zigzag(7, 2)
	kept := []int{0, 3, 6}
	e := Error(SED, tr, kept)
	if e <= 0 {
		t.Fatalf("Error = %v, want > 0", e)
	}
	// Keeping everything gives zero error.
	all := make([]int, len(tr))
	for i := range all {
		all[i] = i
	}
	if got := Error(SED, tr, all); got != 0 {
		t.Errorf("identity simplification error = %v, want 0", got)
	}
}

func TestErrorPanicsOnBadKept(t *testing.T) {
	tr := straight(5)
	bad := [][]int{
		{0},          // too few
		{1, 4},       // missing head
		{0, 3},       // missing tail
		{0, 2, 2, 4}, // not increasing
	}
	for _, kept := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("kept %v did not panic", kept)
				}
			}()
			Error(SED, tr, kept)
		}()
	}
}

func TestMeanError(t *testing.T) {
	tr := zigzag(5, 2)
	kept := []int{0, 4}
	mean := MeanError(SED, tr, kept)
	max := Error(SED, tr, kept)
	if mean <= 0 || mean > max {
		t.Errorf("mean %v should be in (0, max %v]", mean, max)
	}
	all := []int{0, 1, 2, 3, 4}
	if MeanError(SED, tr, all) != 0 {
		t.Error("identity mean error should be 0")
	}
}

func TestErrorOfTrajectoryAndKeptIndices(t *testing.T) {
	tr := zigzag(6, 1)
	s := tr.Pick([]int{0, 2, 5})
	got, err := ErrorOfTrajectory(PED, tr, s)
	if err != nil {
		t.Fatal(err)
	}
	want := Error(PED, tr, []int{0, 2, 5})
	if !almost(got, want) {
		t.Errorf("ErrorOfTrajectory = %v, want %v", got, want)
	}
	// A foreign point must be rejected.
	bad := traj.Trajectory{tr[0], geo.Pt(42, 42, 2.5), tr[5]}
	if _, err := ErrorOfTrajectory(PED, tr, bad); err == nil {
		t.Error("foreign point accepted")
	}
	// Missing endpoint rejected.
	if _, err := ErrorOfTrajectory(PED, tr, tr.Sub(0, 3)); err == nil {
		t.Error("missing tail accepted")
	}
}

func TestErrorNonNegativeProperty(t *testing.T) {
	f := func(ys []int8, split uint8) bool {
		if len(ys) < 3 {
			return true
		}
		tr := make(traj.Trajectory, len(ys))
		for i, y := range ys {
			tr[i] = geo.Pt(float64(i), float64(y), float64(i))
		}
		mid := 1 + int(split)%(len(ys)-2)
		kept := []int{0, mid, len(ys) - 1}
		for _, m := range Measures {
			if Error(m, tr, kept) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentErrorDominatesPointErrorsProperty(t *testing.T) {
	// Definition consistency: for every measure, the segment error equals
	// the max of the per-point (or per-motion-segment) errors it is
	// defined over — so no point error may exceed it.
	f := func(ys []int8) bool {
		if len(ys) < 3 {
			return true
		}
		tr := make(traj.Trajectory, len(ys))
		for i, y := range ys {
			tr[i] = geo.Pt(float64(i), float64(y)/8, float64(i))
		}
		n := len(tr) - 1
		for _, m := range []Measure{SED, PED} {
			se := SegmentError(m, tr, 0, n)
			for i := 1; i < n; i++ {
				if PointError(m, tr, 0, i, n) > se+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
