package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteAtomic writes a file so that a crash mid-write never leaves a
// truncated or half-written file at path: write writes into a temp file in
// the same directory, which is fsynced, closed and renamed over path only
// on success. On any error the temp file is removed and path is untouched.
//
// Every artifact the system persists (policies, checkpoints, datasets,
// experiment exports) goes through here: a policy file that exists is by
// construction complete.
func WriteAtomic(path string, write func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("storage: atomic write %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("storage: atomic write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("storage: atomic write %s: sync: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("storage: atomic write %s: close: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("storage: atomic write %s: %w", path, err)
	}
	return nil
}

// WriteFileAtomic is WriteAtomic for callers that already hold the bytes.
func WriteFileAtomic(path string, data []byte) error {
	return WriteAtomic(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
