package storage

import (
	"bytes"
	"testing"

	"rlts/internal/gen"
)

// FuzzDecode checks the binary decoder never panics or over-allocates on
// adversarial input.
func FuzzDecode(f *testing.F) {
	// Seed with a valid encoding and truncations of it.
	var buf bytes.Buffer
	tr := gen.New(gen.Geolife(), 1).Trajectory(20)
	if err := Encode(&buf, tr, 2); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("TRJ1"))
	f.Add([]byte{})
	// A huge claimed point count must not allocate unboundedly.
	f.Add(append([]byte("TRJ1"), 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f))
	f.Fuzz(func(t *testing.T, in []byte) {
		tr, err := Decode(bytes.NewReader(in))
		if err != nil {
			return
		}
		if len(tr) == 0 {
			t.Fatal("Decode returned empty trajectory without error")
		}
		for _, p := range tr {
			if !p.IsFinite() {
				t.Fatal("Decode returned non-finite point")
			}
		}
	})
}
