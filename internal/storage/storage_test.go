package storage

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"rlts/internal/gen"
	"rlts/internal/geo"
	"rlts/internal/traj"
)

func TestRoundTrip(t *testing.T) {
	tr := gen.New(gen.Geolife(), 1).Trajectory(500)
	var buf bytes.Buffer
	if err := Encode(&buf, tr, 3); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("lengths differ: %d vs %d", back.Len(), tr.Len())
	}
	const tol = 0.5e-3 // half a quantization step at precision 3
	for i := range tr {
		if math.Abs(back[i].X-tr[i].X) > tol ||
			math.Abs(back[i].Y-tr[i].Y) > tol ||
			math.Abs(back[i].T-tr[i].T) > tol {
			t.Fatalf("point %d drifted: %v vs %v", i, back[i], tr[i])
		}
	}
}

func TestCompressionRatio(t *testing.T) {
	tr := gen.New(gen.Geolife(), 2).Trajectory(2000)
	enc, err := EncodedSize(tr, DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	raw := RawSize(tr)
	perPoint := float64(enc) / float64(tr.Len())
	t.Logf("raw %d bytes, encoded %d bytes (%.1f bytes/point, %.1fx)",
		raw, enc, perPoint, float64(raw)/float64(enc))
	if perPoint > 12 {
		t.Errorf("%.1f bytes/point — delta coding not effective", perPoint)
	}
	if enc >= raw {
		t.Error("encoding did not compress at all")
	}
}

func TestEncodeValidation(t *testing.T) {
	tr := gen.New(gen.Geolife(), 3).Trajectory(10)
	var buf bytes.Buffer
	if err := Encode(&buf, tr, -1); err == nil {
		t.Error("negative precision accepted")
	}
	if err := Encode(&buf, tr, 10); err == nil {
		t.Error("precision 10 accepted")
	}
	if err := Encode(&buf, nil, 2); err == nil {
		t.Error("empty trajectory accepted")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("TRJ1"),                    // truncated after magic
		append([]byte("TRJ1"), 0x05, 0x2), // truncated bases
	}
	for i, c := range cases {
		if _, err := Decode(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, lenByte, precByte uint8) bool {
		n := 2 + int(lenByte)%200
		prec := int(precByte) % 5
		tr := gen.New(gen.Truck(), seed).Trajectory(n)
		var buf bytes.Buffer
		if err := Encode(&buf, tr, prec); err != nil {
			return false
		}
		back, err := Decode(&buf)
		if err != nil || back.Len() != n {
			return false
		}
		tol := 0.5 * math.Pow10(-prec) * 1.0001
		for i := range tr {
			if math.Abs(back[i].X-tr[i].X) > tol || math.Abs(back[i].T-tr[i].T) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSingleAndDegeneratePoints(t *testing.T) {
	one := traj.Trajectory{geo.Pt(1234.56, -789.01, 42)}
	var buf bytes.Buffer
	if err := Encode(&buf, one, 2); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 1 || math.Abs(back[0].X-1234.56) > 0.01 {
		t.Errorf("single point round trip: %v", back)
	}
}
