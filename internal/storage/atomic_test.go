package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rlts/internal/gen"
)

func TestWriteAtomicRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	if err := WriteFileAtomic(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("read back %q", got)
	}
	// Overwrite is atomic too.
	if err := WriteFileAtomic(path, []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "world" {
		t.Fatalf("after overwrite: %q", got)
	}
}

func TestWriteAtomicFailureLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "policy.json")
	if err := WriteFileAtomic(path, []byte("good")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial garbage")) // simulate a crash mid-save
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "good" {
		t.Fatalf("target corrupted: %q, %v", got, rerr)
	}
	// No temp litter left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

// TestDecodeTruncated simulates the file a non-atomic writer would leave
// after a crash: every strict prefix of a valid encoding must decode to an
// error, never to a silently short trajectory or a panic.
func TestDecodeTruncated(t *testing.T) {
	tr := gen.New(gen.Geolife(), 1).Trajectory(50)
	var buf bytes.Buffer
	if err := Encode(&buf, tr, DefaultPrecision); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n++ {
		if _, err := Decode(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncated encoding of %d/%d bytes decoded without error", n, len(full))
		}
	}
	if got, err := Decode(bytes.NewReader(full)); err != nil || len(got) != len(tr) {
		t.Fatalf("full decode: %d points, %v", len(got), err)
	}
}

func TestWriteAtomicCreatesInMissingDirFails(t *testing.T) {
	err := WriteFileAtomic(filepath.Join(t.TempDir(), "nope", "x"), []byte("x"))
	if err == nil {
		t.Fatal("expected error for missing directory")
	}
	if !strings.Contains(err.Error(), "atomic write") {
		t.Errorf("error %v lacks context", err)
	}
}

func TestWriteAtomicNoRelativeDir(t *testing.T) {
	// A bare filename (no directory component) must work: temp goes to ".".
	d := t.TempDir()
	old, _ := os.Getwd()
	if err := os.Chdir(d); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)
	if err := WriteFileAtomic("bare.txt", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(d, "bare.txt"))
	if err != nil || string(got) != "ok" {
		t.Fatalf("bare write: %q %v", got, err)
	}
}

func ExampleWriteAtomic() {
	path := filepath.Join(os.TempDir(), "rlts-example-traj.bin")
	defer os.Remove(path)
	tr := gen.New(gen.Truck(), 7).Trajectory(10)
	if err := WriteAtomic(path, func(w io.Writer) error {
		return Encode(w, tr, DefaultPrecision)
	}); err != nil {
		fmt.Println("write:", err)
		return
	}
	f, _ := os.Open(path)
	defer f.Close()
	back, err := Decode(f)
	fmt.Println(len(back), err)
	// Output: 10 <nil>
}
