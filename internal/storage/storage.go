// Package storage provides a compact binary encoding for trajectories so
// the paper's first motivation — simplification cuts storage cost — can
// be quantified in actual bytes rather than point counts. The format
// combines coordinate quantization with delta and varint coding:
//
//	header:  magic "TRJ1", point count (uvarint),
//	         precision (uvarint, decimal places), base x/y/t (float64)
//	points:  zigzag-varint deltas of quantized x, y, t
//
// GPS data is extremely delta-friendly (consecutive points are meters and
// seconds apart), so the encoding reaches ~3-6 bytes/point at centimeter
// precision versus 24 bytes/point raw — and composes multiplicatively
// with a 10x simplification.
package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"rlts/internal/geo"
	"rlts/internal/traj"
)

var magic = [4]byte{'T', 'R', 'J', '1'}

// DefaultPrecision quantizes coordinates to 2 decimal places (centimeters
// for meter units) and timestamps to milliseconds... both use the same
// precision; 2 decimals keeps errors far below GPS noise.
const DefaultPrecision = 2

// Encode writes t to w with the given decimal precision (0..9).
func Encode(w io.Writer, t traj.Trajectory, precision int) error {
	if precision < 0 || precision > 9 {
		return fmt.Errorf("storage: precision %d out of range [0, 9]", precision)
	}
	if len(t) == 0 {
		return fmt.Errorf("storage: empty trajectory")
	}
	scale := math.Pow10(precision)
	buf := make([]byte, 0, 16+10*len(t))
	buf = append(buf, magic[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(t)))
	buf = binary.AppendUvarint(buf, uint64(precision))
	var f64 [8]byte
	for _, base := range []float64{t[0].X, t[0].Y, t[0].T} {
		binary.LittleEndian.PutUint64(f64[:], math.Float64bits(base))
		buf = append(buf, f64[:]...)
	}
	px, py, pt := quantize(t[0], scale)
	for _, p := range t[1:] {
		x, y, ts := quantize(p, scale)
		buf = binary.AppendVarint(buf, x-px)
		buf = binary.AppendVarint(buf, y-py)
		buf = binary.AppendVarint(buf, ts-pt)
		px, py, pt = x, y, ts
	}
	_, err := w.Write(buf)
	return err
}

func quantize(p geo.Point, scale float64) (x, y, t int64) {
	return int64(math.Round(p.X * scale)),
		int64(math.Round(p.Y * scale)),
		int64(math.Round(p.T * scale))
}

// Decode reads a trajectory written by Encode. Coordinates come back
// quantized to the encoded precision.
func Decode(r io.Reader) (traj.Trajectory, error) {
	br := asByteReader(r)
	var m [4]byte
	for i := range m {
		b, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("storage: magic: %w", err)
		}
		m[i] = b
	}
	if m != magic {
		return nil, fmt.Errorf("storage: bad magic %q", m[:])
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("storage: count: %w", err)
	}
	if n == 0 || n > 1<<27 {
		return nil, fmt.Errorf("storage: implausible point count %d", n)
	}
	precision, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("storage: precision: %w", err)
	}
	if precision > 9 {
		return nil, fmt.Errorf("storage: precision %d out of range", precision)
	}
	scale := math.Pow10(int(precision))
	var bases [3]float64
	var f64 [8]byte
	for i := range bases {
		for j := 0; j < 8; j++ {
			b, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("storage: base: %w", err)
			}
			f64[j] = b
		}
		bases[i] = math.Float64frombits(binary.LittleEndian.Uint64(f64[:]))
		if math.IsNaN(bases[i]) || math.IsInf(bases[i], 0) {
			return nil, fmt.Errorf("storage: non-finite base coordinate")
		}
	}
	// Pre-allocate conservatively: a hostile header can claim any count,
	// so cap the upfront allocation and let append grow from there.
	capHint := n
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	out := make(traj.Trajectory, 0, capHint)
	base := geo.Pt(bases[0], bases[1], bases[2])
	x, y, t := quantize(base, scale)
	out = append(out, dequantize(x, y, t, scale))
	for i := uint64(1); i < n; i++ {
		dx, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("storage: point %d: %w", i, err)
		}
		dy, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("storage: point %d: %w", i, err)
		}
		dt, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("storage: point %d: %w", i, err)
		}
		x += dx
		y += dy
		t += dt
		out = append(out, dequantize(x, y, t, scale))
	}
	return out, nil
}

func dequantize(x, y, t int64, scale float64) geo.Point {
	return geo.Pt(float64(x)/scale, float64(y)/scale, float64(t)/scale)
}

// EncodedSize returns the number of bytes Encode would produce.
func EncodedSize(t traj.Trajectory, precision int) (int, error) {
	var c countingWriter
	if err := Encode(&c, t, precision); err != nil {
		return 0, err
	}
	return int(c), nil
}

// RawSize returns the naive storage footprint: 3 float64 per point.
func RawSize(t traj.Trajectory) int { return 24 * len(t) }

type countingWriter int64

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}

type byteReader interface {
	io.Reader
	io.ByteReader
}

func asByteReader(r io.Reader) byteReader {
	if br, ok := r.(byteReader); ok {
		return br
	}
	return &simpleByteReader{r: r}
}

type simpleByteReader struct {
	r   io.Reader
	buf [1]byte
}

func (s *simpleByteReader) Read(p []byte) (int, error) { return s.r.Read(p) }

func (s *simpleByteReader) ReadByte() (byte, error) {
	_, err := io.ReadFull(s.r, s.buf[:])
	return s.buf[0], err
}
