module rlts

go 1.22
