package rlts

import (
	"fmt"

	baseBatch "rlts/internal/baseline/batch"
	baseOnline "rlts/internal/baseline/online"
	"rlts/internal/core"
	"rlts/internal/errm"
	"rlts/internal/geo"
	"rlts/internal/traj"
)

// Point is a spatio-temporal point (x, y, t).
type Point = geo.Point

// Pt constructs a Point.
func Pt(x, y, t float64) Point { return geo.Pt(x, y, t) }

// Trajectory is a time-ordered sequence of points.
type Trajectory = traj.Trajectory

// Measure identifies an error measurement.
type Measure = errm.Measure

// The four error measurements of the paper.
const (
	SED = errm.SED // synchronized Euclidean distance
	PED = errm.PED // perpendicular Euclidean distance
	DAD = errm.DAD // direction-aware distance (radians)
	SAD = errm.SAD // speed-aware distance
)

// Measures lists all supported measures.
var Measures = errm.Measures

// ParseMeasure converts a measure name ("SED", "ped", ...).
func ParseMeasure(name string) (Measure, error) { return errm.Parse(name) }

// Variant selects the RLTS state definition (see the paper / DESIGN.md).
type Variant = core.Variant

// RLTS variants: Online (RLTS / RLTS-Skip), Plus (RLTS+ / RLTS-Skip+) and
// PlusPlus (RLTS++ / RLTS-Skip++).
const (
	Online   = core.Online
	Plus     = core.Plus
	PlusPlus = core.PlusPlus
)

// Options configures an RLTS algorithm instance: the error measure, the
// variant, the state size K and the skip horizon J.
type Options = core.Options

// NewOptions returns the paper's default options (K=3, no skipping) for a
// measure and variant. Set J on the result to enable the Skip variant.
func NewOptions(m Measure, v Variant) Options { return core.DefaultOptions(m, v) }

// Simplifier is a trajectory simplification algorithm: it reduces t to at
// most w points, always keeping the first and last.
type Simplifier interface {
	// Name returns the algorithm's name as used in the paper.
	Name() string
	// Simplify returns the simplified trajectory.
	Simplify(t Trajectory, w int) (Trajectory, error)
}

// funcSimplifier adapts an index-returning algorithm to the Simplifier
// interface.
type funcSimplifier struct {
	name string
	run  func(t Trajectory, w int) ([]int, error)
}

func (f funcSimplifier) Name() string { return f.name }

func (f funcSimplifier) Simplify(t Trajectory, w int) (Trajectory, error) {
	kept, err := f.run(t, w)
	if err != nil {
		return nil, err
	}
	return t.Pick(kept), nil
}

// STTrace returns the STTrace online baseline under measure m.
func STTrace(m Measure) Simplifier {
	return funcSimplifier{"STTrace", func(t Trajectory, w int) ([]int, error) {
		return baseOnline.STTrace(t, w, m)
	}}
}

// SQUISH returns the SQUISH online baseline under measure m.
func SQUISH(m Measure) Simplifier {
	return funcSimplifier{"SQUISH", func(t Trajectory, w int) ([]int, error) {
		return baseOnline.SQUISH(t, w, m)
	}}
}

// SQUISHE returns the SQUISH-E online baseline under measure m.
func SQUISHE(m Measure) Simplifier {
	return funcSimplifier{"SQUISH-E", func(t Trajectory, w int) ([]int, error) {
		return baseOnline.SQUISHE(t, w, m)
	}}
}

// TopDown returns the budgeted Douglas-Peucker batch baseline.
func TopDown(m Measure) Simplifier {
	return funcSimplifier{"Top-Down", func(t Trajectory, w int) ([]int, error) {
		return baseBatch.TopDown(t, w, m)
	}}
}

// BottomUp returns the Bottom-Up batch baseline.
func BottomUp(m Measure) Simplifier {
	return funcSimplifier{"Bottom-Up", func(t Trajectory, w int) ([]int, error) {
		return baseBatch.BottomUp(t, w, m)
	}}
}

// Bellman returns the exact dynamic-programming algorithm. It is cubic:
// use it only on short trajectories.
func Bellman(m Measure) Simplifier {
	return funcSimplifier{"Bellman", func(t Trajectory, w int) ([]int, error) {
		return baseBatch.Bellman(t, w, m)
	}}
}

// SpanSearch returns the DAD-specific Span-Search batch baseline.
func SpanSearch() Simplifier {
	return funcSimplifier{"Span-Search", func(t Trajectory, w int) ([]int, error) {
		return baseBatch.SpanSearch(t, w)
	}}
}

// Uniform returns the uniform-sampling sanity baseline.
func Uniform() Simplifier {
	return funcSimplifier{"Uniform", func(t Trajectory, w int) ([]int, error) {
		return baseOnline.Uniform(t, w)
	}}
}

// Error returns eps(simplified) w.r.t. the original trajectory under
// measure m: the maximum anchor-segment error (the paper's Min-Error
// objective). simplified must be a genuine simplification of t.
func Error(m Measure, t, simplified Trajectory) (float64, error) {
	return errm.ErrorOfTrajectory(m, t, simplified)
}

// MeanError returns the mean per-point error of the simplification, a
// secondary diagnostic to the max-based Error.
func MeanError(m Measure, t, simplified Trajectory) (float64, error) {
	kept, err := errm.KeptIndices(t, simplified)
	if err != nil {
		return 0, err
	}
	return errm.MeanError(m, t, kept), nil
}

// KeptIndices maps a simplified trajectory back to the indices of its
// points in the original.
func KeptIndices(t, simplified Trajectory) ([]int, error) {
	return errm.KeptIndices(t, simplified)
}

func checkW(w int) error {
	if w < 2 {
		return fmt.Errorf("rlts: budget W must be >= 2, got %d", w)
	}
	return nil
}
