package pretrained

import (
	"testing"

	"rlts"
)

func TestAllEmbeddedPoliciesLoad(t *testing.T) {
	if got := len(Names()); got != 8 {
		t.Fatalf("%d embedded policies, want 8: %v", got, Names())
	}
	for _, m := range rlts.Measures {
		for _, v := range []rlts.Variant{rlts.Online, rlts.Plus} {
			p, err := Load(m, v)
			if err != nil {
				t.Fatalf("Load(%v, %v): %v", m, v, err)
			}
			if p.Options().Measure != m || p.Options().Variant != v {
				t.Errorf("Load(%v, %v) returned options %+v", m, v, p.Options())
			}
		}
	}
}

func TestLoadedPolicySimplifies(t *testing.T) {
	p, err := Load(rlts.SED, rlts.Plus)
	if err != nil {
		t.Fatal(err)
	}
	tr := rlts.Generate(rlts.Geolife(), 99, 1, 400)[0]
	out, err := p.Simplifier().Simplify(tr, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) > 40 || !out.IsSimplificationOf(tr) {
		t.Error("embedded policy produced invalid simplification")
	}
	// And it should be competitive: not wildly worse than Bottom-Up.
	e, err := rlts.Error(rlts.SED, tr, out)
	if err != nil {
		t.Fatal(err)
	}
	bu, err := rlts.BottomUp(rlts.SED).Simplify(tr, 40)
	if err != nil {
		t.Fatal(err)
	}
	be, err := rlts.Error(rlts.SED, tr, bu)
	if err != nil {
		t.Fatal(err)
	}
	if e > 2*be+1 {
		t.Errorf("embedded RLTS+ error %v vs Bottom-Up %v — more than 2x worse", e, be)
	}
}

func TestLoadUnsupportedVariant(t *testing.T) {
	if _, err := Load(rlts.SED, rlts.PlusPlus); err == nil {
		t.Error("PlusPlus variant should not be embedded")
	}
}
