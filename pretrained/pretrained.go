// Package pretrained ships ready-to-use RLTS policies so downstream users
// can simplify trajectories without running REINFORCE themselves — the
// moral equivalent of the checkpoint files research repositories publish.
//
// Eight policies are embedded: the online algorithm (RLTS) and the batch
// algorithm (RLTS+) for each of the four error measures, trained on the
// synthetic Geolife-profile repository at the default benchmark scale
// (see EXPERIMENTS.md). They are starting points, not oracles: for best
// results on your own data, fine-tune or retrain with rlts.Train on a
// sample of that data.
//
//	p, err := pretrained.Load(rlts.SED, rlts.Online)
//	simplified, err := p.Simplifier().Simplify(t, len(t)/10)
//
// Regenerate the embedded files with:
//
//	go run ./cmd/rlts-pretrain -o pretrained/data
package pretrained

import (
	"embed"
	"fmt"
	"sort"
	"strings"

	"rlts"
)

//go:embed data/*.json
var files embed.FS

// Load returns the embedded policy for a measure and variant. Only the
// Online and Plus variants are shipped; other variants return an error.
func Load(m rlts.Measure, v rlts.Variant) (*rlts.Policy, error) {
	name, err := fileName(m, v)
	if err != nil {
		return nil, err
	}
	f, err := files.Open(name)
	if err != nil {
		return nil, fmt.Errorf("pretrained: no embedded policy %s: %w", name, err)
	}
	defer f.Close()
	return rlts.LoadPolicy(f)
}

// Names lists the embedded policy files.
func Names() []string {
	entries, err := files.ReadDir("data")
	if err != nil {
		return nil
	}
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out
}

func fileName(m rlts.Measure, v rlts.Variant) (string, error) {
	var vtag string
	switch v {
	case rlts.Online:
		vtag = "online"
	case rlts.Plus:
		vtag = "plus"
	default:
		return "", fmt.Errorf("pretrained: only Online and Plus variants are embedded")
	}
	return "data/" + vtag + "_" + strings.ToLower(m.String()) + ".json", nil
}
