GO ?= go

.PHONY: test check check-diff check-stream check-fleet check-bound check-dirty bench-rollout bench-obs bench-batch bench-fast bench-load

test:
	$(GO) test ./...

# Differential + metamorphic correctness harness (internal/check): tracker
# vs recompute, streamer vs slice simplify, DP min-size vs brute force,
# rigid-motion invariance, adversarial-geometry totality. Deterministic
# seeds, race-enabled. CHECK_SCALE multiplies the iteration budget for
# deeper soak runs (default 1; the gate uses 4).
check-diff:
	CHECK_SCALE=$${CHECK_SCALE:-4} $(GO) test -race -count=1 ./internal/check

# Durable session-store pillar: the spill/rehydrate bit-identity
# differential, the state codec totality tests, and the server-level
# durability suite (restart, quarantine, injected disk failure, Close vs
# live traffic), race-enabled. CHECK_SCALE deepens the differential.
check-stream:
	CHECK_SCALE=$${CHECK_SCALE:-4} $(GO) test -race -count=1 -run 'TestSpillRehydrateDifferential' ./internal/check
	$(GO) test -race -count=1 -run 'TestStreamer(Resume|State)|TestDecodeStreamerState|TestResumeStreamer|TestExportRestore|TestRestore' ./internal/core ./internal/buffer
	$(GO) test -race -count=1 -run 'TestStream|TestServerCloseRacesStreamTraffic' ./internal/server

# Fleet budget pillar: the allocator differential (exact-sum, per-member
# floor, determinism under member ordering), the rebalance invariant (a
# fleet of live streamers never holds more than the global budget, even
# transiently mid-rebalance), the pure allocator suite and the
# server-level fleet tests (lifecycle, attach validation, restart
# survival), race-enabled. CHECK_SCALE deepens the differentials.
check-fleet:
	CHECK_SCALE=$${CHECK_SCALE:-4} $(GO) test -race -count=1 -run 'TestFleetAllocateDifferential|TestFleetRebalanceBudgetInvariant' ./internal/check
	$(GO) test -race -count=1 ./internal/fleet
	$(GO) test -race -count=1 -run 'TestFleet|TestStreamList' ./internal/server

# Error-bounded pillar: the one-pass bound proof (every CISED/OPERB kept
# set re-scored by the exact oracle across all adversarial families) and
# the compression calibration against the Min-Size DP, plus the algorithm
# unit/degenerate tests and the server-level bound=eps routing tests,
# race-enabled. CHECK_SCALE deepens the differentials.
check-bound:
	CHECK_SCALE=$${CHECK_SCALE:-4} $(GO) test -race -count=1 -run 'TestBoundedOnePass' ./internal/check
	$(GO) test -race -count=1 -run 'TestBounded|TestSearchBudget' ./internal/baseline/online ./internal/minsize
	$(GO) test -race -count=1 -run 'TestBounded|TestBudgetConflict' ./internal/server

# Dirty-ingest pillar: the repair contract (output always satisfies the
# strict FromPoints contract, clean input passes through bit-identically,
# chunking and export/resume cuts are invisible), the repairer unit and
# state-codec suites, the hostile generator families, and the server-level
# repair wiring (one-shot, batch, stream, spill-envelope v2 restart
# bit-identity, classified reject codes), race-enabled. CHECK_SCALE
# deepens the differentials.
check-dirty:
	CHECK_SCALE=$${CHECK_SCALE:-4} $(GO) test -race -count=1 -run 'TestRepair' ./internal/check
	$(GO) test -race -count=1 -run 'TestRepair|TestResumeRepairer|TestValidateDuplicateTime|TestDownsampleDirtyTail|TestCleanFloorsMinPoints' ./internal/traj
	$(GO) test -race -count=1 -run 'TestDirty|TestFamilies|TestEveryFamilyRepairs|TestCorrupt|TestCompose|TestOutlierInStop|TestDupOfOutlier' ./internal/gen
	$(GO) test -race -count=1 -run 'TestSimplifyRepair|TestBatchRepair|TestStreamRepair|TestStreamRejectCodes|TestSpillEnvelopeV1|TestPointsErrorCode' ./internal/server

# Full gate: vet + build + race-detector test run (exercises the parallel
# trainer and evaluation paths) + a fuzz smoke pass over every fuzz
# target (override the per-target budget with FUZZTIME=30s).
check:
	sh scripts/check.sh

# Regenerate the rollout-engine benchmark baseline (BENCH_rollout.json).
bench-rollout:
	sh scripts/bench_rollout.sh

# Benchmark the metrics primitives (counter/gauge/histogram hot paths and
# the text encoder).
bench-obs:
	$(GO) test ./internal/obs -run '^$$' -bench . -benchmem

# Regenerate the batched-inference throughput baseline (BENCH_batch.json):
# ForwardBatch vs per-state Forward, BatchEngine vs sequential Simplify,
# the exact-vs-fast kernel comparison, per-core scaling and a short
# sustained-load pair.
bench-batch:
	sh scripts/bench_batch.sh

# FastMath kernel micro benches: FastTanh vs math.Tanh and the fused
# batch forward against the exact batched kernel.
bench-fast:
	$(GO) test ./internal/nn -run '^$$' -bench 'FastTanh|MathTanh|ForwardBatch64' -benchmem

# Sustained-load serving benchmark (exact + fastmath), 10s per mode;
# LOAD_DURATION overrides.
bench-load:
	sh scripts/bench_load.sh
