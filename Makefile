GO ?= go

.PHONY: test check bench-rollout

test:
	$(GO) test ./...

# Full gate: vet + build + race-detector test run (exercises the parallel
# trainer and evaluation paths).
check:
	sh scripts/check.sh

# Regenerate the rollout-engine benchmark baseline (BENCH_rollout.json).
bench-rollout:
	sh scripts/bench_rollout.sh
