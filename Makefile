GO ?= go

.PHONY: test check bench-rollout bench-obs

test:
	$(GO) test ./...

# Full gate: vet + build + race-detector test run (exercises the parallel
# trainer and evaluation paths) + a fuzz smoke pass over every fuzz
# target (override the per-target budget with FUZZTIME=30s).
check:
	sh scripts/check.sh

# Regenerate the rollout-engine benchmark baseline (BENCH_rollout.json).
bench-rollout:
	sh scripts/bench_rollout.sh

# Benchmark the metrics primitives (counter/gauge/histogram hot paths and
# the text encoder).
bench-obs:
	$(GO) test ./internal/obs -run '^$$' -bench . -benchmem
