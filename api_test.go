package rlts

import (
	"bytes"
	"path/filepath"
	"testing"
)

func trainQuickPolicy(t *testing.T, opts Options) *Policy {
	t.Helper()
	cfg := DefaultTrainConfig()
	cfg.Episodes = 6
	train := Generate(Geolife(), 1, 10, 80)
	p, stats, err := Train(train, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EpisodesRun == 0 {
		t.Fatal("no episodes run")
	}
	return p
}

func TestAllSimplifiersSatisfyContract(t *testing.T) {
	tr := Generate(Truck(), 3, 1, 150)[0]
	const w = 20
	simplifiers := []Simplifier{
		STTrace(SED), SQUISH(SED), SQUISHE(SED),
		TopDown(PED), BottomUp(SAD), SpanSearch(), Uniform(),
	}
	for _, s := range simplifiers {
		t.Run(s.Name(), func(t *testing.T) {
			out, err := s.Simplify(tr, w)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) > w {
				t.Errorf("kept %d > %d", len(out), w)
			}
			if !out.IsSimplificationOf(tr) {
				t.Error("contract violated: not a simplification")
			}
		})
	}
}

func TestBellmanSimplifier(t *testing.T) {
	tr := Generate(Geolife(), 5, 1, 60)[0]
	out, err := Bellman(SED).Simplify(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	optErr, err := Error(SED, tr, out)
	if err != nil {
		t.Fatal(err)
	}
	// Exactness: no baseline may beat Bellman.
	for _, s := range []Simplifier{BottomUp(SED), TopDown(SED)} {
		o, err := s.Simplify(tr, 10)
		if err != nil {
			t.Fatal(err)
		}
		e, err := Error(SED, tr, o)
		if err != nil {
			t.Fatal(err)
		}
		if optErr > e+1e-9 {
			t.Errorf("Bellman %v beaten by %s %v", optErr, s.Name(), e)
		}
	}
}

func TestTrainSimplifySaveLoad(t *testing.T) {
	opts := NewOptions(SED, Plus)
	p := trainQuickPolicy(t, opts)
	if p.Name() != "RLTS+" {
		t.Errorf("Name = %q", p.Name())
	}
	tr := Generate(Geolife(), 9, 1, 120)[0]
	out, err := p.Simplifier().Simplify(tr, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) > 15 || !out.IsSimplificationOf(tr) {
		t.Error("policy simplifier contract violated")
	}

	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := LoadPolicy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.GreedySimplifier().Simplify(tr, 15)
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.GreedySimplifier().Simplify(tr, 15)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("loaded policy behaves differently")
	}
}

func TestSaveLoadFile(t *testing.T) {
	p := trainQuickPolicy(t, NewOptions(PED, Online))
	path := filepath.Join(t.TempDir(), "policy.json")
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	q, err := LoadPolicyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if q.Options() != p.Options() {
		t.Error("options lost in file round trip")
	}
	if _, err := LoadPolicyFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestStreamAPI(t *testing.T) {
	opts := NewOptions(SED, Online)
	opts.J = 2
	p := trainQuickPolicy(t, opts)
	st, err := p.NewStream(10)
	if err != nil {
		t.Fatal(err)
	}
	tr := Generate(Geolife(), 11, 1, 150)[0]
	for _, pt := range tr {
		st.Push(pt)
		if st.BufferSize() > 10 {
			t.Fatalf("buffer %d > 10", st.BufferSize())
		}
	}
	snap := st.Snapshot()
	if st.Seen() != 150 {
		t.Errorf("Seen = %d", st.Seen())
	}
	if !snap[len(snap)-1].Equal(tr[len(tr)-1]) {
		t.Error("snapshot does not end at the last point")
	}
	// Batch policies cannot stream.
	pb := trainQuickPolicy(t, NewOptions(SED, Plus))
	if _, err := pb.NewStream(10); err == nil {
		t.Error("batch policy allowed to stream")
	}
}

func TestErrorHelpers(t *testing.T) {
	tr := Generate(Truck(), 13, 1, 100)[0]
	out, err := BottomUp(SED).Simplify(tr, 12)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Error(SED, tr, out)
	if err != nil {
		t.Fatal(err)
	}
	if e < 0 {
		t.Errorf("error %v < 0", e)
	}
	me, err := MeanError(SED, tr, out)
	if err != nil {
		t.Fatal(err)
	}
	if me < 0 || me > e {
		t.Errorf("mean error %v outside [0, %v]", me, e)
	}
	kept, err := KeptIndices(tr, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != len(out) {
		t.Error("KeptIndices length mismatch")
	}
	// Identity simplification has zero error.
	e, err = Error(SED, tr, tr)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("identity error %v", e)
	}
	// Non-simplification rejected.
	if _, err := Error(SED, tr, Generate(Truck(), 14, 1, 50)[0]); err == nil {
		t.Error("foreign trajectory accepted")
	}
}

func TestGenerateAndCSV(t *testing.T) {
	ds := Generate(TDrive(), 3, 4, 50)
	if len(ds) != 4 || ds[0].Len() != 50 {
		t.Fatalf("Generate shape wrong")
	}
	s := Summarize(ds)
	if s.TotalPoints != 200 {
		t.Errorf("TotalPoints = %d", s.TotalPoints)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 4 || !back[2].Equal(ds[2]) {
		t.Error("CSV round trip failed")
	}
	varied := GenerateVaried(Geolife(), 5, 10, 30, 60)
	for _, tr := range varied {
		if tr.Len() < 30 || tr.Len() > 60 {
			t.Fatalf("varied length %d", tr.Len())
		}
	}
}

func TestParseMeasure(t *testing.T) {
	m, err := ParseMeasure("dad")
	if err != nil || m != DAD {
		t.Errorf("ParseMeasure = %v, %v", m, err)
	}
	if _, err := ParseMeasure("xyz"); err == nil {
		t.Error("bad measure accepted")
	}
}

func TestSimplifierRejectsBadW(t *testing.T) {
	p := trainQuickPolicy(t, NewOptions(SED, Online))
	tr := Generate(Geolife(), 1, 1, 50)[0]
	if _, err := p.Simplifier().Simplify(tr, 1); err == nil {
		t.Error("W=1 accepted")
	}
}

func TestMinSizeAPI(t *testing.T) {
	tr := Generate(Geolife(), 17, 1, 120)[0]
	const bound = 10.0
	for name, f := range map[string]func() (Trajectory, error){
		"greedy":  func() (Trajectory, error) { return MinSizeGreedy(tr, bound, SED) },
		"optimal": func() (Trajectory, error) { return MinSizeOptimal(tr, bound, SED) },
		"search":  func() (Trajectory, error) { return MinSizeWith(tr, bound, SED, BottomUp(SED)) },
	} {
		out, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		e, err := Error(SED, tr, out)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e > bound+1e-9 {
			t.Errorf("%s: error %v exceeds bound %v", name, e, bound)
		}
	}
}

func TestBoundedAPI(t *testing.T) {
	tr := Generate(Geolife(), 17, 1, 120)[0]
	const bound = 10.0
	for name, f := range map[string]struct {
		m   Measure
		run func() (Trajectory, error)
	}{
		"cised": {SED, func() (Trajectory, error) { return CISED(tr, bound) }},
		"operb": {PED, func() (Trajectory, error) { return OPERB(tr, bound) }},
	} {
		out, err := f.run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		e, err := Error(f.m, tr, out)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e > bound {
			t.Errorf("%s: error %v exceeds bound %v", name, e, bound)
		}
		if len(out) >= len(tr) {
			t.Errorf("%s: no compression (kept %d of %d)", name, len(out), len(tr))
		}
	}
	if _, err := CISED(tr, -1); err == nil {
		t.Error("negative bound accepted")
	}
}

func TestQueryAPI(t *testing.T) {
	tr := Generate(Truck(), 19, 1, 100)[0]
	p := PositionAt(tr, tr[50].T)
	if p.X != tr[50].X || p.Y != tr[50].Y {
		t.Error("PositionAt at an exact timestamp should return the point")
	}
	c := PositionAt(tr, (tr[0].T+tr[99].T)/2)
	r := Rect{MinX: c.X - 50, MinY: c.Y - 50, MaxX: c.X + 50, MaxY: c.Y + 50}
	if !WithinDuring(tr, r, tr[0].T, tr[99].T) {
		t.Error("object passes through a rect centered on its own path")
	}
	if d, _ := NearestApproach(tr, c); d > 50 {
		t.Errorf("nearest approach %v to an on-path point", d)
	}
	if DTW(tr, tr) != 0 || DiscreteFrechet(tr, tr) != 0 {
		t.Error("self-similarity should be 0")
	}
}

func TestAdaptiveAPI(t *testing.T) {
	tr := Generate(Geolife(), 23, 1, 200)[0]
	m, feats := RecommendMeasure(tr)
	if !m.Valid() {
		t.Errorf("invalid recommendation %v", m)
	}
	if feats.MeanStep <= 0 {
		t.Errorf("features not extracted: %+v", feats)
	}
	bm, out, err := SimplifyBalanced(tr, 25, func(m Measure) Simplifier { return BottomUp(m) })
	if err != nil {
		t.Fatal(err)
	}
	if !bm.Valid() || len(out) > 25 || !out.IsSimplificationOf(tr) {
		t.Error("balanced simplification contract violated")
	}
}
