package rlts

import (
	"rlts/internal/minsize"
)

// The Min-Size functions solve the dual of the Min-Error problem: given
// an error bound instead of a point budget, keep as few points as
// possible while the error stays within the bound. The paper reviews this
// dual problem in its related work; these are library extensions, not
// part of its evaluation.

// MinSizeGreedy returns a simplification with error <= bound using
// one-pass maximal span extension. Fast; not size-optimal.
func MinSizeGreedy(t Trajectory, bound float64, m Measure) (Trajectory, error) {
	kept, err := minsize.Greedy(t, bound, m)
	if err != nil {
		return nil, err
	}
	return t.Pick(kept), nil
}

// MinSizeOptimal returns a minimum-size simplification with error <=
// bound via dynamic programming. Quadratic; use on short trajectories.
func MinSizeOptimal(t Trajectory, bound float64, m Measure) (Trajectory, error) {
	kept, err := minsize.Optimal(t, bound, m)
	if err != nil {
		return nil, err
	}
	return t.Pick(kept), nil
}

// MinSizeWith finds the smallest budget whose simplification by s meets
// the bound, via binary search over W — usable with any Simplifier,
// including a trained RLTS policy.
func MinSizeWith(t Trajectory, bound float64, m Measure, s Simplifier) (Trajectory, error) {
	kept, err := minsize.SearchBudget(t, bound, m, func(t Trajectory, w int) ([]int, error) {
		out, err := s.Simplify(t, w)
		if err != nil {
			return nil, err
		}
		return KeptIndices(t, out)
	})
	if err != nil {
		return nil, err
	}
	return t.Pick(kept), nil
}
